/**
 * @file
 * Tests for the linear-time encoder: topology determinism, sparse
 * matrices, encoding linearity/systematicity, and the GPU drivers
 * (including the bucket-sort warp-balancing effect).
 */

#include <gtest/gtest.h>

#include <thread>

#include "encoder/GpuEncoder.h"
#include "encoder/SparseMatrix.h"
#include "encoder/SpielmanCode.h"
#include "encoder/Topology.h"
#include "ff/Fields.h"
#include "gpusim/Device.h"

namespace bzk {
namespace {

TEST(Topology, Deterministic)
{
    EncoderTopology a(1 << 10, 42), b(1 << 10, 42);
    ASSERT_EQ(a.levels().size(), b.levels().size());
    for (size_t l = 0; l < a.levels().size(); ++l) {
        EXPECT_EQ(a.levels()[l].a_degrees, b.levels()[l].a_degrees);
        EXPECT_EQ(a.levels()[l].b_degrees, b.levels()[l].b_degrees);
    }
    EXPECT_EQ(a.seedA(0), b.seedA(0));
    EXPECT_EQ(a.seedBase(), b.seedBase());
}

TEST(Topology, SeedsDiffer)
{
    EncoderTopology a(1 << 10, 1), b(1 << 10, 2);
    EXPECT_NE(a.seedA(0), b.seedA(0));
    EXPECT_NE(a.levels()[0].a_degrees, b.levels()[0].a_degrees);
}

TEST(Topology, LevelShapes)
{
    size_t k = 1 << 12;
    EncoderTopology topo(k, 7);
    size_t cur = k;
    for (const auto &level : topo.levels()) {
        EXPECT_EQ(level.k, cur);
        EXPECT_EQ(level.a_degrees.size(), cur / 4);
        EXPECT_EQ(level.b_degrees.size(), cur / 2);
        cur /= 4;
    }
    EXPECT_LE(topo.baseSize(), kEncoderBaseSize);
    EXPECT_EQ(topo.codewordLength(), 2 * k);
}

TEST(Topology, DegreesWithinBuckets)
{
    EncoderTopology topo(1 << 10, 9);
    for (const auto &level : topo.levels()) {
        for (uint8_t d : level.a_degrees) {
            EXPECT_GE(d, kEncoderDegreeA / 2 + 1);
            EXPECT_LE(d, 3 * kEncoderDegreeA / 2);
        }
        for (uint8_t d : level.b_degrees) {
            EXPECT_GE(d, kEncoderDegreeB / 2 + 1);
            EXPECT_LE(d, 3 * kEncoderDegreeB / 2);
        }
    }
}

TEST(SparseMatrix, ShapeAndNnz)
{
    Rng rng(3);
    std::vector<uint8_t> degrees{2, 3, 1};
    SparseMatrix<Fr> m(degrees, 10, rng);
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 10u);
    EXPECT_EQ(m.nnz(), 6u);
}

TEST(SparseMatrix, MulVecLinear)
{
    Rng rng(4);
    std::vector<uint8_t> degrees(16, 5);
    SparseMatrix<Fr> m(degrees, 32, rng);
    std::vector<Fr> x(32), y(32);
    for (auto &v : x)
        v = Fr::random(rng);
    for (auto &v : y)
        v = Fr::random(rng);
    Fr a = Fr::random(rng), b = Fr::random(rng);

    std::vector<Fr> combo(32);
    for (size_t i = 0; i < 32; ++i)
        combo[i] = a * x[i] + b * y[i];

    std::vector<Fr> mx(16), my(16), mc(16);
    m.mulVec(x, mx);
    m.mulVec(y, my);
    m.mulVec(combo, mc);
    for (size_t i = 0; i < 16; ++i)
        EXPECT_EQ(mc[i], a * mx[i] + b * my[i]);
}

TEST(SparseMatrix, ZeroInZeroOut)
{
    Rng rng(5);
    std::vector<uint8_t> degrees(8, 4);
    SparseMatrix<Gl64> m(degrees, 16, rng);
    std::vector<Gl64> x(16, Gl64::zero()), out(8);
    m.mulVec(x, out);
    for (const auto &v : out)
        EXPECT_TRUE(v.isZero());
}

template <typename F>
class SpielmanT : public ::testing::Test
{
};

using Fields = ::testing::Types<Fr, Gl64>;
TYPED_TEST_SUITE(SpielmanT, Fields);

TYPED_TEST(SpielmanT, CodewordLengthIsRateHalf)
{
    using F = TypeParam;
    for (size_t k : {32u, 128u, 1024u}) {
        SpielmanCode<F> code(k, 11);
        Rng rng(6);
        std::vector<F> msg(k);
        for (auto &m : msg)
            m = F::random(rng);
        EXPECT_EQ(code.encode(msg).size(), 2 * k) << "k=" << k;
    }
}

TYPED_TEST(SpielmanT, Systematic)
{
    // The message appears verbatim as the codeword prefix.
    using F = TypeParam;
    size_t k = 256;
    SpielmanCode<F> code(k, 12);
    Rng rng(7);
    std::vector<F> msg(k);
    for (auto &m : msg)
        m = F::random(rng);
    auto cw = code.encode(msg);
    for (size_t i = 0; i < k; ++i)
        EXPECT_EQ(cw[i], msg[i]);
}

TYPED_TEST(SpielmanT, Linear)
{
    // E(a*x + b*y) == a*E(x) + b*E(y): the property the SNARK's
    // proximity test relies on.
    using F = TypeParam;
    size_t k = 512;
    SpielmanCode<F> code(k, 13);
    Rng rng(8);
    std::vector<F> x(k), y(k), combo(k);
    F a = F::random(rng), b = F::random(rng);
    for (size_t i = 0; i < k; ++i) {
        x[i] = F::random(rng);
        y[i] = F::random(rng);
        combo[i] = a * x[i] + b * y[i];
    }
    auto ex = code.encode(x);
    auto ey = code.encode(y);
    auto ec = code.encode(combo);
    for (size_t i = 0; i < 2 * k; ++i)
        EXPECT_EQ(ec[i], a * ex[i] + b * ey[i]);
}

TYPED_TEST(SpielmanT, Deterministic)
{
    using F = TypeParam;
    size_t k = 128;
    SpielmanCode<F> c1(k, 14), c2(k, 14);
    Rng rng(9);
    std::vector<F> msg(k);
    for (auto &m : msg)
        m = F::random(rng);
    EXPECT_EQ(c1.encode(msg), c2.encode(msg));
}

TYPED_TEST(SpielmanT, CodewordBitIdenticalAcrossThreadCounts)
{
    // The row-grouped parallel sparse stages write disjoint outputs,
    // so the codeword must not depend on the thread count — including
    // small codes that fall under the serial cutoff.
    using F = TypeParam;
    Rng rng(91);
    size_t hw = std::thread::hardware_concurrency();
    for (size_t k : {size_t{64}, size_t{1024}}) {
        SpielmanCode<F> code(k, 23);
        std::vector<F> msg(k);
        for (auto &m : msg)
            m = F::random(rng);
        auto serial = code.encode(msg);
        for (size_t threads :
             {size_t{1}, size_t{2}, hw ? hw : size_t{4}}) {
            exec::ExecConfig cfg;
            cfg.threads = threads;
            exec::ExecContext exec(cfg);
            EXPECT_EQ(code.encode(msg, &exec), serial)
                << "k=" << k << " threads=" << threads;
        }
    }
}

TEST(SparseMatrix, MulVecParallelMatchesSerial)
{
    Rng rng(92);
    std::vector<uint8_t> degrees(301);
    for (auto &d : degrees)
        d = static_cast<uint8_t>(1 + rng.nextBounded(9));
    SparseMatrix<Fr> m(degrees, /*cols=*/257, rng);
    std::vector<Fr> x(257);
    for (auto &v : x)
        v = Fr::random(rng);
    std::vector<Fr> serial(m.rows());
    m.mulVec(x, serial);

    exec::ExecConfig cfg;
    cfg.threads = 4;
    cfg.serial_cutoff = 1; // force the grouped parallel path
    exec::ExecContext exec(cfg);
    std::vector<Fr> parallel(m.rows());
    m.mulVec(x, parallel, &exec);
    EXPECT_EQ(parallel, serial);
}

TYPED_TEST(SpielmanT, DistinctMessagesDistinctCodewords)
{
    using F = TypeParam;
    size_t k = 128;
    SpielmanCode<F> code(k, 15);
    Rng rng(10);
    std::vector<F> msg(k);
    for (auto &m : msg)
        m = F::random(rng);
    auto cw1 = code.encode(msg);
    msg[5] += F::one();
    auto cw2 = code.encode(msg);
    EXPECT_NE(cw1, cw2);
}

TEST(EncoderStageCosts, SortedNeverWorse)
{
    EncoderTopology topo(1 << 12, 16);
    for (const auto &s : encoderStageCosts(topo))
        EXPECT_LE(s.lane_cycles_sorted, s.lane_cycles_unsorted + 1e-9);
}

TEST(EncoderStageCosts, SortingHelpsOnSparseStages)
{
    // With degrees spread over [mean/2+1, 3mean/2], natural warp groups
    // pay close to the max degree; sorted groups pay close to the mean.
    EncoderTopology topo(1 << 14, 17);
    auto stages = encoderStageCosts(topo);
    double sorted = 0, unsorted = 0;
    for (const auto &s : stages) {
        sorted += s.lane_cycles_sorted;
        unsorted += s.lane_cycles_unsorted;
    }
    EXPECT_LT(sorted, unsorted * 0.92);
}

TEST(EncoderStageCosts, StageCountIsTwoDepthPlusOne)
{
    EncoderTopology topo(1 << 12, 18);
    auto stages = encoderStageCosts(topo);
    EXPECT_EQ(stages.size(), 2 * topo.levels().size() + 1);
}

class GpuEncoderTest : public ::testing::Test
{
  protected:
    gpusim::Device dev_{gpusim::DeviceSpec::v100()};
};

TEST_F(GpuEncoderTest, FunctionalCodewordsMatchReference)
{
    GpuEncoderOptions opt;
    opt.functional = 2;
    Rng rng1(20), rng2(20);
    std::vector<std::vector<Fr>> gpu_codes;
    PipelinedEncoderGpu(dev_, opt).run(4, 1 << 8, rng1, &gpu_codes);
    ASSERT_EQ(gpu_codes.size(), 2u);

    SpielmanCode<Fr> code(1 << 8, 0xbadc0de5 + (1 << 8));
    for (size_t i = 0; i < 2; ++i) {
        std::vector<Fr> msg(1 << 8);
        for (auto &m : msg)
            m = Fr::random(rng2);
        EXPECT_EQ(gpu_codes[i], code.encode(msg));
    }
}

TEST_F(GpuEncoderTest, PipelinedBeatsNonPipelined)
{
    GpuEncoderOptions opt;
    opt.functional = 0;
    Rng rng(1);
    auto pipe = PipelinedEncoderGpu(dev_, opt).run(128, 1 << 12, rng);
    auto np = NonPipelinedEncoderGpu(dev_, opt).run(128, 1 << 12, rng);
    EXPECT_GT(pipe.throughput_per_ms, np.throughput_per_ms);
}

TEST_F(GpuEncoderTest, AdvantageGrowsForSmallMessages)
{
    GpuEncoderOptions opt;
    opt.functional = 0;
    Rng rng(1);
    auto speedup = [&](size_t k) {
        auto pipe = PipelinedEncoderGpu(dev_, opt).run(128, k, rng);
        auto np = NonPipelinedEncoderGpu(dev_, opt).run(128, k, rng);
        return pipe.throughput_per_ms / np.throughput_per_ms;
    };
    EXPECT_GT(speedup(1 << 10), speedup(1 << 16));
}

TEST_F(GpuEncoderTest, PipelinedLatencyWorse)
{
    GpuEncoderOptions opt;
    opt.functional = 0;
    Rng rng(1);
    auto pipe = PipelinedEncoderGpu(dev_, opt).run(128, 1 << 16, rng);
    auto np = NonPipelinedEncoderGpu(dev_, opt).run(128, 1 << 16, rng);
    EXPECT_GT(pipe.first_latency_ms, np.first_latency_ms);
}

TEST_F(GpuEncoderTest, UtilizationHigherWhenPipelined)
{
    GpuEncoderOptions opt;
    opt.functional = 0;
    Rng rng(1);
    auto pipe = PipelinedEncoderGpu(dev_, opt).run(256, 1 << 12, rng);
    auto np = NonPipelinedEncoderGpu(dev_, opt).run(256, 1 << 12, rng);
    EXPECT_GT(pipe.utilization, np.utilization);
}

TEST_F(GpuEncoderTest, CpuBaselineProducesSameCodewords)
{
    Rng rng1(21), rng2(21);
    std::vector<std::vector<Fr>> cpu_codes, gpu_codes;
    CpuEncoderBaseline(1).run(2, 1 << 8, rng1, &cpu_codes);
    GpuEncoderOptions opt;
    opt.functional = 1;
    PipelinedEncoderGpu(dev_, opt).run(2, 1 << 8, rng2, &gpu_codes);
    ASSERT_EQ(cpu_codes.size(), 1u);
    ASSERT_EQ(gpu_codes.size(), 1u);
    EXPECT_EQ(cpu_codes[0], gpu_codes[0]);
}

} // namespace
} // namespace bzk
