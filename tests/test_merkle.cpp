/**
 * @file
 * Tests for the Merkle-tree module: reference construction, inclusion
 * proofs, and the GPU batch drivers (functional equality plus the
 * timing/memory properties the paper claims).
 */

#include <gtest/gtest.h>

#include <thread>

#include "exec/ExecContext.h"
#include "gpusim/Device.h"
#include "merkle/GpuMerkle.h"
#include "merkle/MerkleTree.h"

namespace bzk {
namespace {

std::vector<uint8_t>
bytes(size_t n, uint8_t fill)
{
    return std::vector<uint8_t>(n, fill);
}

TEST(MerkleTree, SingleBlock)
{
    auto data = bytes(64, 0xaa);
    MerkleTree t = MerkleTree::build(data);
    EXPECT_EQ(t.numLeaves(), 1u);
    EXPECT_EQ(t.compressions(), 1u);
    uint8_t block[64];
    std::copy(data.begin(), data.end(), block);
    EXPECT_EQ(t.root(),
              Sha256::compressBlock(std::span<const uint8_t, 64>(block)));
}

TEST(MerkleTree, TwoBlocksRootIsPairHash)
{
    auto data = bytes(128, 0x01);
    MerkleTree t = MerkleTree::build(data);
    EXPECT_EQ(t.numLeaves(), 2u);
    EXPECT_EQ(t.root(), Sha256::hashPair(t.leaf(0), t.leaf(1)));
    EXPECT_EQ(t.compressions(), 3u);
}

TEST(MerkleTree, CompressionCountIs2NMinus1)
{
    // The paper's cost analysis: 2N ~ N + N/2 + ... + 1 hashes.
    for (size_t n : {4u, 8u, 64u}) {
        MerkleTree t = MerkleTree::build(bytes(64 * n, 0x55));
        EXPECT_EQ(t.compressions(), 2 * n - 1) << "N=" << n;
    }
}

TEST(MerkleTree, PadsToPowerOfTwo)
{
    MerkleTree t = MerkleTree::build(bytes(64 * 5, 0x11));
    EXPECT_EQ(t.numLeaves(), 8u);
}

TEST(MerkleTree, PadsPartialBlock)
{
    // 100 bytes -> 2 blocks, second zero-padded; must differ from the
    // 128-byte all-same input.
    auto short_data = bytes(100, 0x22);
    auto long_data = bytes(128, 0x22);
    EXPECT_NE(MerkleTree::build(short_data).root(),
              MerkleTree::build(long_data).root());
}

TEST(MerkleTree, RootChangesWithAnyBlock)
{
    auto data = bytes(64 * 8, 0x00);
    Digest base = MerkleTree::build(data).root();
    for (size_t block = 0; block < 8; ++block) {
        auto mutated = data;
        mutated[block * 64 + 3] ^= 1;
        EXPECT_NE(MerkleTree::build(mutated).root(), base)
            << "block " << block;
    }
}

TEST(MerkleTree, PathVerifies)
{
    auto data = bytes(64 * 16, 0x42);
    MerkleTree t = MerkleTree::build(data);
    for (size_t i = 0; i < 16; ++i) {
        MerklePath p = t.path(i);
        EXPECT_EQ(p.siblings.size(), 4u);
        EXPECT_TRUE(MerkleTree::verifyPath(t.root(), t.leaf(i), p));
    }
}

std::vector<uint8_t>
distinctBlocks(size_t n)
{
    std::vector<uint8_t> data(64 * n);
    for (size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<uint8_t>(i * 31 + i / 64);
    return data;
}

TEST(MerkleTree, PathRejectsWrongLeaf)
{
    MerkleTree t = MerkleTree::build(distinctBlocks(8));
    MerklePath p = t.path(3);
    EXPECT_FALSE(MerkleTree::verifyPath(t.root(), t.leaf(4), p));
}

TEST(MerkleTree, PathRejectsWrongIndex)
{
    MerkleTree t = MerkleTree::build(distinctBlocks(8));
    MerklePath p = t.path(3);
    p.leaf_index = 5;
    EXPECT_FALSE(MerkleTree::verifyPath(t.root(), t.leaf(3), p));
}

TEST(MerkleTree, PathRejectsTamperedSibling)
{
    auto data = bytes(64 * 8, 0x42);
    MerkleTree t = MerkleTree::build(data);
    MerklePath p = t.path(2);
    p.siblings[1].bytes[0] ^= 1;
    EXPECT_FALSE(MerkleTree::verifyPath(t.root(), t.leaf(2), p));
}

TEST(MerkleTree, BuildFromLeaves)
{
    std::vector<Digest> leaves(4);
    for (int i = 0; i < 4; ++i)
        leaves[i].bytes[0] = static_cast<uint8_t>(i);
    MerkleTree t = MerkleTree::buildFromLeaves(leaves);
    Digest l = Sha256::hashPair(leaves[0], leaves[1]);
    Digest r = Sha256::hashPair(leaves[2], leaves[3]);
    EXPECT_EQ(t.root(), Sha256::hashPair(l, r));
}

TEST(MerkleTree, RootBitIdenticalAcrossThreadCounts)
{
    // 1000 blocks: not a power of two, so the build path exercises
    // padding, the multi-way leaf hasher's ragged tail, and every
    // parallel layer. The root must not depend on the thread count.
    std::vector<uint8_t> data(1000 * 64);
    for (size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<uint8_t>(i * 37 + 11);
    Digest serial_root = MerkleTree::build(data).root();

    size_t hw = std::thread::hardware_concurrency();
    for (size_t threads : {size_t{1}, size_t{2}, hw ? hw : size_t{4}}) {
        exec::ExecConfig cfg;
        cfg.threads = threads;
        exec::ExecContext exec(cfg);
        MerkleTree t = MerkleTree::build(data, &exec);
        EXPECT_EQ(t.root(), serial_root) << "threads=" << threads;
        EXPECT_EQ(t.compressions(), MerkleTree::build(data).compressions())
            << "threads=" << threads;
    }
}

TEST(MerkleTree, PathsVerifyOnParallelBuild)
{
    std::vector<uint8_t> data(64 * 64, 0x3c);
    exec::ExecConfig cfg;
    cfg.threads = 4;
    exec::ExecContext exec(cfg);
    MerkleTree t = MerkleTree::build(data, &exec);
    for (size_t leaf : {size_t{0}, size_t{17}, size_t{63}}) {
        MerklePath p = t.path(leaf);
        EXPECT_TRUE(MerkleTree::verifyPath(t.root(), t.leaf(leaf), p));
    }
}

class GpuMerkleTest : public ::testing::Test
{
  protected:
    gpusim::Device dev_{gpusim::DeviceSpec::v100()};
};

TEST_F(GpuMerkleTest, PipelinedAndIntuitiveAgreeOnRoots)
{
    // The GPU drivers run the identical functional hashing; with the
    // same seed, roots must match across strategies.
    GpuMerkleOptions opt;
    opt.functional = 3;
    Rng rng1(77), rng2(77);
    std::vector<Digest> roots_pipe, roots_int;
    PipelinedMerkleGpu(dev_, opt).run(8, 256, rng1, &roots_pipe);
    IntuitiveMerkleGpu(dev_, opt).run(8, 256, rng2, &roots_int);
    ASSERT_EQ(roots_pipe.size(), 3u);
    EXPECT_EQ(roots_pipe, roots_int);
}

TEST_F(GpuMerkleTest, CpuBaselineAgreesOnRoots)
{
    Rng rng1(78), rng2(78);
    std::vector<Digest> gpu_roots, cpu_roots;
    GpuMerkleOptions opt;
    opt.functional = 2;
    PipelinedMerkleGpu(dev_, opt).run(4, 128, rng1, &gpu_roots);
    CpuMerkleBaseline(2).run(4, 128, rng2, &cpu_roots);
    ASSERT_EQ(cpu_roots.size(), 2u);
    EXPECT_EQ(gpu_roots, cpu_roots);
}

TEST_F(GpuMerkleTest, PipelinedThroughputBeatsIntuitive)
{
    // Table 3's headline: the pipelined builder wins on throughput.
    GpuMerkleOptions opt;
    opt.functional = 0;
    Rng rng(1);
    auto pipe = PipelinedMerkleGpu(dev_, opt).run(256, 1 << 12, rng);
    auto intuitive = IntuitiveMerkleGpu(dev_, opt).run(256, 1 << 12, rng);
    EXPECT_GT(pipe.throughput_per_ms, intuitive.throughput_per_ms);
}

TEST_F(GpuMerkleTest, PipelinedAdvantageGrowsForSmallTrees)
{
    GpuMerkleOptions opt;
    opt.functional = 0;
    Rng rng(1);
    auto speedup = [&](size_t n_blocks) {
        auto pipe = PipelinedMerkleGpu(dev_, opt).run(256, n_blocks, rng);
        auto base = IntuitiveMerkleGpu(dev_, opt).run(256, n_blocks, rng);
        return pipe.throughput_per_ms / base.throughput_per_ms;
    };
    EXPECT_GT(speedup(1 << 10), speedup(1 << 16));
}

TEST_F(GpuMerkleTest, PipelinedLatencyIsWorse)
{
    // Table 6: pipelining trades latency for throughput.
    GpuMerkleOptions opt;
    opt.functional = 0;
    Rng rng(1);
    auto pipe = PipelinedMerkleGpu(dev_, opt).run(128, 1 << 14, rng);
    auto intuitive = IntuitiveMerkleGpu(dev_, opt).run(128, 1 << 14, rng);
    EXPECT_GT(pipe.first_latency_ms, intuitive.first_latency_ms);
}

TEST_F(GpuMerkleTest, PipelinedUsesLessDeviceMemory)
{
    // Sec. 3.1: 2N blocks versus mN blocks.
    GpuMerkleOptions opt;
    opt.functional = 0;
    Rng rng(1);
    auto pipe = PipelinedMerkleGpu(dev_, opt).run(64, 1 << 12, rng);
    auto intuitive = IntuitiveMerkleGpu(dev_, opt).run(64, 1 << 12, rng);
    EXPECT_LT(pipe.peak_device_bytes, intuitive.peak_device_bytes / 4);
}

TEST_F(GpuMerkleTest, PipelinedUtilizationHigher)
{
    // Figure 9 shape: the pipelined module keeps lanes busy.
    GpuMerkleOptions opt;
    opt.functional = 0;
    Rng rng(1);
    auto pipe = PipelinedMerkleGpu(dev_, opt).run(256, 1 << 12, rng);
    auto intuitive = IntuitiveMerkleGpu(dev_, opt).run(256, 1 << 12, rng);
    EXPECT_GT(pipe.utilization, intuitive.utilization);
    EXPECT_GT(pipe.utilization, 0.7);
}

TEST_F(GpuMerkleTest, ThroughputScalesWithBatch)
{
    // Amortization: bigger batches approach the steady-state rate.
    GpuMerkleOptions opt;
    opt.functional = 0;
    Rng rng(1);
    auto small = PipelinedMerkleGpu(dev_, opt).run(16, 1 << 12, rng);
    auto large = PipelinedMerkleGpu(dev_, opt).run(512, 1 << 12, rng);
    EXPECT_GT(large.throughput_per_ms, small.throughput_per_ms);
}

TEST_F(GpuMerkleTest, StreamIoOverlapsNotSerializes)
{
    // With multi-stream dynamic loading, total time should be far below
    // compute + transfer fully serialized.
    GpuMerkleOptions opt;
    opt.functional = 0;
    Rng rng(1);
    auto resident = PipelinedMerkleGpu(dev_, opt).run(128, 1 << 12, rng);
    opt.stream_io = true;
    auto streamed = PipelinedMerkleGpu(dev_, opt).run(128, 1 << 12, rng);
    double copy_ms = dev_.copyDurationMs(128ull * (1 << 12) * 64);
    EXPECT_LT(streamed.total_ms,
              resident.total_ms + copy_ms + resident.total_ms * 0.25);
}

} // namespace
} // namespace bzk
