/**
 * @file
 * Tests for SHA-256 (against FIPS 180-4 vectors) and the Fiat-Shamir
 * transcript.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "ff/Fields.h"
#include "hash/Sha256.h"
#include "hash/Transcript.h"

namespace bzk {
namespace {

Digest
digestOfString(const std::string &s)
{
    return Sha256::digest(std::span<const uint8_t>(
        reinterpret_cast<const uint8_t *>(s.data()), s.size()));
}

TEST(Sha256, EmptyVector)
{
    EXPECT_EQ(digestOfString("").toHex(),
              "e3b0c44298fc1c149afbf4c8996fb924"
              "27ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc)
{
    EXPECT_EQ(digestOfString("abc").toHex(),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage)
{
    EXPECT_EQ(
        digestOfString(
            "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")
            .toHex(),
        "248d6a61d20638b8e5c026930c3e6039"
        "a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs)
{
    Sha256 h;
    std::vector<uint8_t> chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i)
        h.update(chunk);
    EXPECT_EQ(h.finalize().toHex(),
              "cdc76e5c9914fb9281a1c7e284d73e67"
              "f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot)
{
    std::string msg = "the quick brown fox jumps over the lazy dog";
    for (size_t split = 0; split <= msg.size(); ++split) {
        Sha256 h;
        h.update(std::span<const uint8_t>(
            reinterpret_cast<const uint8_t *>(msg.data()), split));
        h.update(std::span<const uint8_t>(
            reinterpret_cast<const uint8_t *>(msg.data()) + split,
            msg.size() - split));
        EXPECT_EQ(h.finalize(), digestOfString(msg)) << "split " << split;
    }
}

TEST(Sha256, ExactBlockBoundary)
{
    std::string msg(64, 'x');
    std::string msg2(128, 'x');
    EXPECT_NE(digestOfString(msg), digestOfString(msg2));
    // Incremental across the boundary matches one-shot.
    Sha256 h;
    h.update(std::span<const uint8_t>(
        reinterpret_cast<const uint8_t *>(msg2.data()), 64));
    h.update(std::span<const uint8_t>(
        reinterpret_cast<const uint8_t *>(msg2.data()) + 64, 64));
    EXPECT_EQ(h.finalize(), digestOfString(msg2));
}

TEST(Sha256, CompressBlockDiffersFromPaddedDigest)
{
    uint8_t block[64] = {0};
    Digest raw = Sha256::compressBlock(std::span<const uint8_t, 64>(block));
    Digest padded = Sha256::digest(std::span<const uint8_t>(block, 64));
    EXPECT_NE(raw, padded);
}

TEST(Sha256, HashPairDeterministicAndOrderSensitive)
{
    Digest a = digestOfString("left");
    Digest b = digestOfString("right");
    EXPECT_EQ(Sha256::hashPair(a, b), Sha256::hashPair(a, b));
    EXPECT_NE(Sha256::hashPair(a, b), Sha256::hashPair(b, a));
}

TEST(Sha256, CompressBlocks4MatchesScalar)
{
    uint8_t blocks[4 * 64];
    for (size_t i = 0; i < sizeof(blocks); ++i)
        blocks[i] = static_cast<uint8_t>(i * 31 + 7);
    Digest out[4];
    Sha256::compressBlocks4(blocks, out);
    for (size_t lane = 0; lane < 4; ++lane) {
        Digest ref = Sha256::compressBlock(
            std::span<const uint8_t, 64>(blocks + 64 * lane, 64));
        EXPECT_EQ(out[lane], ref) << "lane " << lane;
    }
}

TEST(Sha256, CompressBlocks8MatchesScalar)
{
    uint8_t blocks[8 * 64];
    for (size_t i = 0; i < sizeof(blocks); ++i)
        blocks[i] = static_cast<uint8_t>(i * 131 + 17);
    Digest out[8];
    Sha256::compressBlocks8(blocks, out);
    for (size_t lane = 0; lane < 8; ++lane) {
        Digest ref = Sha256::compressBlock(
            std::span<const uint8_t, 64>(blocks + 64 * lane, 64));
        EXPECT_EQ(out[lane], ref) << "lane " << lane;
    }
}

TEST(Sha256, CompressBlocks4KnownAnswer)
{
    // Lane 0 carries the FIPS 180-4 one-block padded message for "abc";
    // the multi-way path must reproduce the canonical digest exactly.
    uint8_t blocks[4 * 64] = {0};
    blocks[0] = 'a';
    blocks[1] = 'b';
    blocks[2] = 'c';
    blocks[3] = 0x80;
    blocks[63] = 24; // bit length
    Digest out[4];
    Sha256::compressBlocks4(blocks, out);
    EXPECT_EQ(out[0].toHex(),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, HashPairsMatchesHashPairForAllLaneWidths)
{
    // 21 pairs = two 8-wide groups, one 4-wide group, one scalar pair:
    // every code path in the multi-way layer hasher.
    std::vector<Digest> children(42);
    for (size_t i = 0; i < children.size(); ++i)
        children[i] = digestOfString("child" + std::to_string(i));
    std::vector<Digest> out(21);
    Sha256::hashPairs(children.data(), out.size(), out.data());
    for (size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], Sha256::hashPair(children[2 * i],
                                           children[2 * i + 1]))
            << "pair " << i;
}

TEST(Transcript, DeterministicReplay)
{
    Transcript t1("test"), t2("test");
    uint8_t msg[3] = {1, 2, 3};
    t1.absorb("m", msg);
    t2.absorb("m", msg);
    EXPECT_EQ(t1.challengeDigest("c"), t2.challengeDigest("c"));
    EXPECT_EQ(t1.challengeField<Fr>("f"), t2.challengeField<Fr>("f"));
}

TEST(Transcript, DomainSeparation)
{
    Transcript t1("a"), t2("b");
    EXPECT_NE(t1.challengeDigest("c"), t2.challengeDigest("c"));
}

TEST(Transcript, AbsorbChangesChallenges)
{
    Transcript t1("test"), t2("test");
    uint8_t msg[1] = {7};
    t1.absorb("m", msg);
    EXPECT_NE(t1.challengeDigest("c"), t2.challengeDigest("c"));
}

TEST(Transcript, SuccessiveChallengesDiffer)
{
    Transcript t("test");
    EXPECT_NE(t.challengeDigest("c"), t.challengeDigest("c"));
}

TEST(Transcript, ChallengeIndexInBound)
{
    Transcript t("test");
    for (int i = 0; i < 100; ++i)
        EXPECT_LT(t.challengeIndex("i", 37), 37u);
}

TEST(Transcript, DistinctIndicesAreDistinct)
{
    Transcript t("test");
    auto idx = t.challengeDistinctIndices("i", 20, 32);
    EXPECT_EQ(idx.size(), 20u);
    std::sort(idx.begin(), idx.end());
    EXPECT_EQ(std::unique(idx.begin(), idx.end()), idx.end());
    for (uint64_t v : idx)
        EXPECT_LT(v, 32u);
}

TEST(Transcript, FieldChallengeCanonical)
{
    Transcript t("test");
    Fr c = t.challengeField<Fr>("f");
    uint8_t buf[32];
    c.toBytes(buf);
    EXPECT_EQ(Fr::fromBytes(buf), c);
}

TEST(Transcript, LabelsSeparateDomains)
{
    // Same data under different labels must diverge.
    Transcript t1("test"), t2("test");
    uint8_t msg[2] = {9, 9};
    t1.absorb("a", msg);
    t2.absorb("b", msg);
    EXPECT_NE(t1.challengeDigest("c"), t2.challengeDigest("c"));
}

TEST(Transcript, ChallengeLabelMatters)
{
    Transcript t1("test"), t2("test");
    EXPECT_NE(t1.challengeDigest("x"), t2.challengeDigest("y"));
}

TEST(Transcript, ChallengeDependsOnEarlierChallenges)
{
    // The transcript ratchets: absorbing the same message after different
    // numbers of challenges produces different states.
    Transcript t1("test"), t2("test");
    (void)t1.challengeDigest("c");
    uint8_t msg[1] = {1};
    t1.absorb("m", msg);
    t2.absorb("m", msg);
    EXPECT_NE(t1.challengeDigest("x"), t2.challengeDigest("x"));
}

} // namespace
} // namespace bzk
