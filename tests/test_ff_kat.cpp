/**
 * @file
 * Known-answer tests for the field arithmetic, with expected values
 * computed by an independent big-integer implementation (CPython);
 * guards the Montgomery code against consistent-but-wrong arithmetic
 * that the algebraic property tests cannot see.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "ff/FieldBackend.h"
#include "ff/Fields.h"
#include "util/Hex.h"
#include "util/Rng.h"

namespace bzk {
namespace {

U256
u256FromHexStr(const std::string &hex)
{
    // Hex is most-significant first, 64 digits.
    auto bytes = fromHex(hex);
    EXPECT_EQ(bytes.size(), 32u);
    std::reverse(bytes.begin(), bytes.end()); // to little-endian
    return u256FromBytes(std::span<const uint8_t, 32>(bytes.data(), 32));
}

const char *kA =
    "123456789abcdef0fedcba9876543210123456789abcdef0fedcba9876543210";
const char *kB =
    "0f0e0d0c0b0a09080706050403020100ffeeddccbbaa99887766554433221100";

TEST(FrKat, Mul)
{
    Fr a = Fr::fromU256(u256FromHexStr(kA));
    Fr b = Fr::fromU256(u256FromHexStr(kB));
    EXPECT_EQ((a * b).toHexString(),
              "1350b4f42ed6ca0a68542755c442c814"
              "212d28a6856ee62ce107b3fb917c331b");
}

TEST(FrKat, Add)
{
    Fr a = Fr::fromU256(u256FromHexStr(kA));
    Fr b = Fr::fromU256(u256FromHexStr(kB));
    EXPECT_EQ((a + b).toHexString(),
              "21426384a5c6e7f905e2bf9c79563311"
              "122334455667787976430fdca9764310");
}

TEST(FrKat, Inverse)
{
    Fr a = Fr::fromU256(u256FromHexStr(kA));
    EXPECT_EQ(a.inverse().toHexString(),
              "0fd586d9834f8a524551a7b05798fd40"
              "65c83ceed28fd46fc4083015afbb6868");
}

TEST(FrKat, Pow)
{
    EXPECT_EQ(Fr::fromUint(5).pow(uint64_t{1000}).toHexString(),
              "250897e0356b83a11904963508fd8ee3"
              "db125e037b8b00a1d66727c21a8466bb");
}

TEST(FrKat, RootOfUnityOrder28)
{
    Fr w = Fr::rootOfUnity(28);
    EXPECT_EQ(w.toHexString(),
              "2a3c09f0a58a7e8500e0a7eb8ef62abc"
              "402d111e41112ed49bd61b6e725b19f0");
    // w^(2^27) = -1 = r - 1.
    Fr half = w;
    for (int i = 0; i < 27; ++i)
        half = half.square();
    EXPECT_EQ(half.toHexString(),
              "30644e72e131a029b85045b68181585d"
              "2833e84879b9709143e1f593f0000000");
    EXPECT_EQ(half, -Fr::one());
}

TEST(FqKat, Mul)
{
    Fq a = Fq::fromU256(u256FromHexStr(kA));
    Fq b = Fq::fromU256(u256FromHexStr(kB));
    EXPECT_EQ((a * b).toHexString(),
              "0c760fa44bc48d9e84498818d971edb1"
              "667dc4403d458fdf5a49f36fd44a66cf");
}

TEST(GoldilocksKat, MulAndInverse)
{
    Gl64 a = Gl64::fromUint(0x123456789abcdef0ULL);
    Gl64 b = Gl64::fromUint(0xfedcba9876543210ULL);
    EXPECT_EQ((a * b).toHexString(), "faeafd1f6c7bbad4");
    EXPECT_EQ(a.inverse().toHexString(), "cc82422076a04151");
}

TEST(FrKat, MontgomeryFormInvisible)
{
    // toU256 of small values must be the values themselves (round-trip
    // through Montgomery form is the identity on canonical integers).
    for (uint64_t v : {0ULL, 1ULL, 2ULL, 123456789ULL}) {
        U256 u = Fr::fromUint(v).toU256();
        EXPECT_EQ(u, U256{v});
    }
}

TEST(FrKat, ModulusMinusOneSquares)
{
    // (-1)^2 == 1 catches sign/reduction slips at the modulus boundary.
    Fr m1 = -Fr::one();
    EXPECT_EQ(m1 * m1, Fr::one());
    EXPECT_EQ(m1.square(), Fr::one());
}

// fromBytesReduce used to truncate to the low 8 bytes and reduce with
// a modulo-biased `v % p`; it now consumes up to 16 bytes through the
// full 128-bit reduction. Expected values from CPython big ints.

TEST(GoldilocksKat, FromBytesReduceWide)
{
    uint8_t seq[16];
    for (int i = 0; i < 16; ++i)
        seq[i] = static_cast<uint8_t>(0xf0 + i);
    EXPECT_EQ(Gl64::fromBytesReduce(seq, 16).toHexString(),
              "f3f1efebf7f8f9fb");

    uint8_t ones[16];
    std::fill(ones, ones + 16, 0xff);
    EXPECT_EQ(Gl64::fromBytesReduce(ones, 16).toHexString(),
              "fffffffe00000000");

    // Longer inputs (a 32-byte transcript digest) consume exactly the
    // first 16 bytes.
    uint8_t digest[32];
    for (int i = 0; i < 32; ++i)
        digest[i] = static_cast<uint8_t>(i + 1);
    EXPECT_EQ(Gl64::fromBytesReduce(digest, 32).toHexString(),
              "1412100de7e8e9eb");
    EXPECT_EQ(Gl64::fromBytesReduce(digest, 32),
              Gl64::fromBytesReduce(digest, 16));
}

TEST(GoldilocksKat, FromBytesReduceShortCompat)
{
    // For len <= 8 the mapping is unchanged from the old single-limb
    // path (high limb zero), so absorbed-field transcripts still match.
    uint8_t eight[8] = {0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03, 0x04};
    EXPECT_EQ(Gl64::fromBytesReduce(eight, 8).toHexString(),
              "04030201efbeadde");
    EXPECT_EQ(Gl64::fromBytesReduce(eight, 8), Gl64::fromBytes(eight));

    uint8_t twelve[12];
    std::fill(twelve, twelve + 12, 0x11);
    EXPECT_EQ(Gl64::fromBytesReduce(twelve, 12).toHexString(),
              "2222222200000000");
}

// ---- Packed kernel KATs, forced through every available backend ----

std::vector<ff::Backend>
availableBackends()
{
    std::vector<ff::Backend> backends;
    for (ff::Backend b : {ff::Backend::kScalar, ff::Backend::kAvx2,
                          ff::Backend::kAvx512, ff::Backend::kNeon})
        if (ff::backendAvailable(b))
            backends.push_back(b);
    return backends;
}

/** Operand mix exercising the reduction edge cases in every lane. */
std::vector<Gl64>
edgeOperands(size_t n, uint64_t salt)
{
    Rng rng(0x5eed ^ salt);
    std::vector<Gl64> v(n);
    for (size_t i = 0; i < n; ++i)
        v[i] = Gl64::random(rng);
    if (n > 0)
        v[0] = Gl64::fromUint(Gl64::kModulus - 1);
    if (n > 1)
        v[1] = Gl64::zero();
    if (n > 2)
        v[2] = Gl64::fromUint(Gl64::kModulus - 1);
    if (n > 3)
        v[3] = Gl64::one();
    return v;
}

class BackendGuard
{
  public:
    ~BackendGuard()
    {
        ff::clearForcedBackend();
        ff::forceWideIfma(-1);
    }
};

TEST(FieldBackendKat, MulAddSubAtModulusBoundary)
{
    BackendGuard guard;
    Gl64 pm1 = Gl64::fromUint(Gl64::kModulus - 1);
    Gl64 pm2 = Gl64::fromUint(Gl64::kModulus - 2);
    for (ff::Backend backend : availableBackends()) {
        SCOPED_TRACE(ff::backendName(backend));
        ff::forceBackend(backend);
        // Fill a whole 8-lane vector with boundary values so every
        // lane of every backend sees them.
        std::vector<Gl64> a(8, pm1), b(8, pm2), out(8);
        ff::mulLanes(a.data(), b.data(), out.data(), 8);
        for (const Gl64 &o : out)
            EXPECT_EQ(o.toHexString(), "0000000000000002");
        ff::addLanes(a.data(), a.data(), out.data(), 8);
        for (const Gl64 &o : out)
            EXPECT_EQ(o, pm2);
        ff::subLanes(b.data(), a.data(), out.data(), 8);
        for (const Gl64 &o : out)
            EXPECT_EQ(o, -Gl64::one());
    }
}

TEST(FieldBackendKat, LaneKernelsMatchScalarAcrossSizes)
{
    BackendGuard guard;
    Gl64 r = Gl64::fromUint(0x0123456789abcdefULL);
    for (ff::Backend backend : availableBackends()) {
        size_t lanes = ff::backendLanes(backend);
        // Lane-boundary sizes: a partial vector, exact multiples, and
        // one-past, so both the SIMD body and the scalar tail run.
        const size_t sizes[] = {1,         lanes,        lanes + 1,
                                2 * lanes, 2 * lanes + 3, 67};
        for (size_t n : sizes) {
            SCOPED_TRACE(std::string(ff::backendName(backend)) +
                         " n=" + std::to_string(n));
            auto a = edgeOperands(n, 1);
            auto b = edgeOperands(n, 2);

            ff::forceBackend(ff::Backend::kScalar);
            std::vector<Gl64> want_add(n), want_sub(n), want_mul(n);
            std::vector<Gl64> want_fold = a, want_axpy = a;
            ff::addLanes(a.data(), b.data(), want_add.data(), n);
            ff::subLanes(a.data(), b.data(), want_sub.data(), n);
            ff::mulLanes(a.data(), b.data(), want_mul.data(), n);
            ff::foldLanes(want_fold.data(), b.data(), r, n);
            ff::axpyLanes(want_axpy.data(), b.data(), r, n);
            Gl64 want_sum = ff::sumLanes(a.data(), n);
            Gl64 want_dot = ff::dotLanes(a.data(), b.data(), n);

            ff::forceBackend(backend);
            std::vector<Gl64> got(n);
            ff::addLanes(a.data(), b.data(), got.data(), n);
            EXPECT_EQ(got, want_add);
            ff::subLanes(a.data(), b.data(), got.data(), n);
            EXPECT_EQ(got, want_sub);
            ff::mulLanes(a.data(), b.data(), got.data(), n);
            EXPECT_EQ(got, want_mul);
            got = a;
            ff::foldLanes(got.data(), b.data(), r, n);
            EXPECT_EQ(got, want_fold);
            got = a;
            ff::axpyLanes(got.data(), b.data(), r, n);
            EXPECT_EQ(got, want_axpy);
            EXPECT_EQ(ff::sumLanes(a.data(), n), want_sum);
            EXPECT_EQ(ff::dotLanes(a.data(), b.data(), n), want_dot);

            // Canonicalization audit: packed outputs must be < p so
            // they are safe to serialize (toBytes panics otherwise).
            for (const Gl64 &v : want_mul)
                EXPECT_LT(v.toUint(), Gl64::kModulus);
            for (const Gl64 &v : got)
                EXPECT_LT(v.toUint(), Gl64::kModulus);
        }
    }
}

TEST(FieldBackendKat, BackendDispatchControls)
{
    BackendGuard guard;
    EXPECT_TRUE(ff::backendAvailable(ff::Backend::kScalar));
    EXPECT_EQ(ff::backendLanes(ff::Backend::kScalar), 1u);
    EXPECT_STREQ(ff::backendName(ff::Backend::kAvx512), "avx512");
    ff::forceBackend(ff::Backend::kScalar);
    EXPECT_EQ(ff::activeBackend(), ff::Backend::kScalar);
    ff::clearForcedBackend();
    // Re-resolution lands on an available backend.
    EXPECT_TRUE(ff::backendAvailable(ff::activeBackend()));
    // detectBackend ignores overrides and only names available ones.
    EXPECT_TRUE(ff::backendAvailable(ff::detectBackend()));
}

TEST(FieldBackendKat, KernelCountersAdvance)
{
    BackendGuard guard;
    ff::resetKernelCounters();
    std::vector<Gl64> a(16, Gl64::one()), out(16);
    ff::mulLanes(a.data(), a.data(), out.data(), 16);
    ff::mulLanes(a.data(), a.data(), out.data(), 16);
    (void)ff::sumLanes(a.data(), 16);
    ff::KernelCounters c = ff::kernelCounters();
    EXPECT_EQ(c.mul_lanes, 2u);
    EXPECT_EQ(c.sum_lanes, 1u);
    EXPECT_EQ(c.add_lanes, 0u);
}

TEST(FieldBackendKat, BatchInverseMatchesFermatAndSkipsZeros)
{
    BackendGuard guard;
    for (ff::Backend backend : availableBackends()) {
        SCOPED_TRACE(ff::backendName(backend));
        ff::forceBackend(backend);
        auto x = edgeOperands(33, 3);
        std::vector<Gl64> want(x.size());
        for (size_t i = 0; i < x.size(); ++i)
            want[i] = x[i].isZero() ? Gl64::zero() : x[i].inverse();
        std::vector<Gl64> got = x;
        // One zero at index 1: skipped, not inverted.
        EXPECT_EQ(ff::batchInverse(got.data(), got.size()),
                  got.size() - 1);
        EXPECT_EQ(got, want);

        // Round trip: x * x^-1 == 1 for the non-zero entries.
        for (size_t i = 0; i < x.size(); ++i) {
            if (!x[i].isZero()) {
                EXPECT_EQ(x[i] * got[i], Gl64::one());
            }
        }
    }
}

TEST(FieldBackendKat, BatchInverseAllZeroAndEmpty)
{
    std::vector<Gl64> zeros(5, Gl64::zero());
    EXPECT_EQ(ff::batchInverse(zeros.data(), zeros.size()), 0u);
    for (const Gl64 &z : zeros)
        EXPECT_TRUE(z.isZero());
    EXPECT_EQ(ff::batchInverse(zeros.data(), 0), 0u);
}

// ---- Wide-field (BN254 Fr/Fq) kernel KATs --------------------------
//
// Every (backend, IFMA) combination this host can run is swept
// through the same call sites: the scalar table, the 4-way AVX2
// table, the AVX2 table as the IFMA-off AVX-512 fallback, and the
// 8-way IFMA table where the CPU has vpmadd52.

struct WideConfig
{
    ff::Backend backend;
    int ifma; // forceWideIfma argument
};

std::vector<WideConfig>
wideConfigs()
{
    std::vector<WideConfig> cfgs;
    for (ff::Backend b : availableBackends()) {
        cfgs.push_back({b, 0});
        if (b == ff::Backend::kAvx512 && ff::wideIfmaAvailable())
            cfgs.push_back({b, 1});
    }
    return cfgs;
}

std::string
wideTrace(const WideConfig &cfg)
{
    return std::string(ff::backendName(cfg.backend)) +
           (cfg.ifma ? "+ifma" : "-ifma");
}

/** Operand mix hitting the modulus boundary in SIMD-body lanes. */
template <typename F>
std::vector<F>
wideEdgeOperands(size_t n, uint64_t salt)
{
    Rng rng(0x5eed ^ salt);
    std::vector<F> v(n);
    for (auto &x : v)
        x = F::random(rng);
    if (n > 0)
        v[0] = -F::one(); // p - 1
    if (n > 1)
        v[1] = F::zero();
    if (n > 2)
        v[2] = -F::one();
    if (n > 3)
        v[3] = F::one();
    return v;
}

/**
 * CPython-pinned lane products and dot over 9 elements (one past the
 * 8-wide IFMA block, so the scalar tail runs too): a_i = A + i,
 * b_i = B + i with the file-level kA/kB operands.
 */
template <typename F>
void
checkWideMulPinned(const char *const (&expect_mul)[9],
                   const char *expect_dot)
{
    BackendGuard guard;
    std::vector<F> a(9), b(9), out(9);
    for (uint64_t i = 0; i < 9; ++i) {
        a[i] = F::fromU256(u256FromHexStr(kA)) + F::fromUint(i);
        b[i] = F::fromU256(u256FromHexStr(kB)) + F::fromUint(i);
    }
    for (const WideConfig &cfg : wideConfigs()) {
        SCOPED_TRACE(wideTrace(cfg));
        ff::forceBackend(cfg.backend);
        ff::forceWideIfma(cfg.ifma);
        ff::mulLanes(a.data(), b.data(), out.data(), 9);
        for (size_t i = 0; i < 9; ++i)
            EXPECT_EQ(out[i].toHexString(), expect_mul[i]) << "lane " << i;
        EXPECT_EQ(ff::dotLanes(a.data(), b.data(), 9).toHexString(),
                  expect_dot);
    }
}

TEST(WideFieldKat, FrLaneMulPinned)
{
    static const char *const kMul[9] = {
        "1350b4f42ed6ca0a68542755c442c814212d28a6856ee62ce107b3fb917c331b",
        "042eca05f36c11d9b5e6a13bbc17a2c80b1c74a3621cee151368ce444af2762b",
        "25712d8a9932f9d2bbc960d8356dd5d91d3fa8e8b884668e89abde20f468b93e",
        "164f429c5dc841a2095bdabe2d42b08d072ef4e595326e76bc0cf869addefc52",
        "072d57ae225d897156ee54a425178b40f11e40e271e0765eee6e12b267553f68",
        "286fbb32c824716a5cd114409e6dbe5203417527c847eed864b1228f10cb8281",
        "194dd0448cb9b939aa638e2696429905ed30c124a4f5f6c097123cd7ca41c59b",
        "0a2be556514f0108f7f6080c8e1773b9d7200d2181a3fea8c973572083b808b7",
        "2b6e48daf715e901fdd8c7a9076da6cae9434166d80b77223fb666fd2d2e4bd6",
    };
    checkWideMulPinned<Fr>(
        kMul,
        "1033c6ac541834d25610b40ecc528ceb51dc5fad872ab8c51dfcb2b1b1ff3ae3");
}

TEST(WideFieldKat, FqLaneMulPinned)
{
    static const char *const kMul[9] = {
        "0c760fa44bc48d9e84498818d971edb1667dc4403d458fdf5a49f36fd44a66cf",
        "2db87328f18b75978a2c47b552c820c278a0f88593ad0858d08d034c7dc0a9e0",
        "1e96883ab620bd66d7bec19b4a9cfb75f342c23981a2b6450aaf87124eb9efac",
        "0f749d4c7ab6053625513b814271d6296de48bed6f98643144d20ad81fb3357a",
        "0052b25e3f4b4d0572e3b5673a46b0dce88655a15d8e121d7ef48e9df0ac7b4a",
        "219515e2e51234fe78c67503b39ce3edfaa989e6b3f58a96f5379e7a9a22be63",
        "12732af4a9a77ccdc658eee9ab71bea1754b539aa1eb38832f5a22406b1c0437",
        "035140066e3cc49d13eb68cfa3469954efed1d4e8fe0e66f697ca6063c154a0d",
        "2493a38b1403ac9619ce286c1c9ccc6602105193e6485ee8dfbfb5e2e58b8d2c",
    };
    checkWideMulPinned<Fq>(
        kMul,
        "02e8455039a5b5310a0160a10c7c37c42cb902ac49fea3097699038d761055d6");
}

template <typename F>
void
checkWideLaneKernels()
{
    BackendGuard guard;
    F r = F::fromU256(u256FromHexStr(kB));
    // Lane-boundary sizes for both 4-wide and 8-wide blocks: partial
    // vectors, exact multiples, and one-past, so the SIMD body and the
    // scalar tail both run.
    const size_t sizes[] = {1, 3, 4, 5, 7, 8, 9, 16, 19, 67};
    for (const WideConfig &cfg : wideConfigs()) {
        for (size_t n : sizes) {
            SCOPED_TRACE(wideTrace(cfg) + " n=" + std::to_string(n));
            auto a = wideEdgeOperands<F>(n, 1);
            auto b = wideEdgeOperands<F>(n, 2);

            ff::forceBackend(ff::Backend::kScalar);
            std::vector<F> want_add(n), want_sub(n), want_mul(n);
            std::vector<F> want_fold = a, want_axpy = a;
            ff::addLanes(a.data(), b.data(), want_add.data(), n);
            ff::subLanes(a.data(), b.data(), want_sub.data(), n);
            ff::mulLanes(a.data(), b.data(), want_mul.data(), n);
            ff::foldLanes(want_fold.data(), b.data(), r, n);
            ff::axpyLanes(want_axpy.data(), b.data(), r, n);
            F want_sum = ff::sumLanes(a.data(), n);
            F want_dot = ff::dotLanes(a.data(), b.data(), n);

            ff::forceBackend(cfg.backend);
            ff::forceWideIfma(cfg.ifma);
            std::vector<F> got(n);
            ff::addLanes(a.data(), b.data(), got.data(), n);
            EXPECT_EQ(got, want_add);
            ff::subLanes(a.data(), b.data(), got.data(), n);
            EXPECT_EQ(got, want_sub);
            ff::mulLanes(a.data(), b.data(), got.data(), n);
            EXPECT_EQ(got, want_mul);
            got = a;
            ff::foldLanes(got.data(), b.data(), r, n);
            EXPECT_EQ(got, want_fold);
            got = a;
            ff::axpyLanes(got.data(), b.data(), r, n);
            EXPECT_EQ(got, want_axpy);
            EXPECT_EQ(ff::sumLanes(a.data(), n), want_sum);
            EXPECT_EQ(ff::dotLanes(a.data(), b.data(), n), want_dot);

            // Canonicality audit: packed outputs must stay < p in raw
            // Montgomery form or serialization and transcript hashing
            // would diverge between backends.
            for (const F &v : want_mul)
                EXPECT_LT(cmp(v.montRaw(), F::kModulus), 0);
            for (const F &v : got)
                EXPECT_LT(cmp(v.montRaw(), F::kModulus), 0);
        }
    }
}

TEST(WideFieldKat, FrLaneKernelsMatchScalarAcrossSizes)
{
    checkWideLaneKernels<Fr>();
}

TEST(WideFieldKat, FqLaneKernelsMatchScalarAcrossSizes)
{
    checkWideLaneKernels<Fq>();
}

TEST(WideFieldKat, DispatchControls)
{
    BackendGuard guard;
    EXPECT_STREQ(ff::wideBackendName(ff::WideBackend::kIfma), "ifma");
    EXPECT_EQ(ff::wideBackendLanes(ff::WideBackend::kScalar), 1u);
    EXPECT_EQ(ff::wideBackendLanes(ff::WideBackend::kAvx2), 4u);
    EXPECT_EQ(ff::wideBackendLanes(ff::WideBackend::kIfma), 8u);

    ff::forceBackend(ff::Backend::kScalar);
    EXPECT_EQ(ff::activeWideBackend(), ff::WideBackend::kScalar);
    if (ff::backendAvailable(ff::Backend::kAvx2)) {
        ff::forceBackend(ff::Backend::kAvx2);
        EXPECT_EQ(ff::activeWideBackend(), ff::WideBackend::kAvx2);
    }
    if (ff::backendAvailable(ff::Backend::kAvx512)) {
        ff::forceBackend(ff::Backend::kAvx512);
        ff::forceWideIfma(0);
        // The IFMA-off AVX-512 fallback is the 4-way AVX2 table.
        EXPECT_EQ(ff::activeWideBackend(), ff::WideBackend::kAvx2);
        if (ff::wideIfmaAvailable()) {
            ff::forceWideIfma(1);
            EXPECT_EQ(ff::activeWideBackend(), ff::WideBackend::kIfma);
        }
    }
}

TEST(WideFieldKat, WideCountersAdvance)
{
    BackendGuard guard;
    ff::resetKernelCounters();
    std::vector<Fr> a(16, Fr::one()), out(16);
    ff::mulLanes(a.data(), a.data(), out.data(), 16);
    ff::mulLanes(a.data(), a.data(), out.data(), 16);
    (void)ff::sumLanes(a.data(), 16);
    std::vector<Fr> inv = a;
    ff::batchInverse(inv.data(), inv.size());
    ff::KernelCounters c = ff::kernelCounters();
    EXPECT_EQ(c.wide_mul_lanes, 2u);
    EXPECT_EQ(c.wide_sum_lanes, 1u);
    EXPECT_EQ(c.wide_batch_inverse, 1u);
    EXPECT_EQ(c.wide_add_lanes, 0u);
    // Goldilocks counters are untouched by wide-field traffic.
    EXPECT_EQ(c.mul_lanes, 0u);
}

TEST(FieldBackendKat, BatchInverseWorksForFr)
{
    // The generic (non-Goldilocks) instantiation of the same template.
    Rng rng(77);
    std::vector<Fr> x(9);
    for (auto &v : x)
        v = Fr::random(rng);
    x[4] = Fr::zero();
    std::vector<Fr> got = x;
    EXPECT_EQ(ff::batchInverse(got.data(), got.size()), x.size() - 1);
    for (size_t i = 0; i < x.size(); ++i) {
        if (x[i].isZero()) {
            EXPECT_TRUE(got[i].isZero());
        } else {
            EXPECT_EQ(x[i] * got[i], Fr::one());
        }
    }
}

} // namespace
} // namespace bzk
