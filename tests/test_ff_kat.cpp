/**
 * @file
 * Known-answer tests for the field arithmetic, with expected values
 * computed by an independent big-integer implementation (CPython);
 * guards the Montgomery code against consistent-but-wrong arithmetic
 * that the algebraic property tests cannot see.
 */

#include <gtest/gtest.h>

#include "ff/Fields.h"
#include "util/Hex.h"

namespace bzk {
namespace {

U256
u256FromHexStr(const std::string &hex)
{
    // Hex is most-significant first, 64 digits.
    auto bytes = fromHex(hex);
    EXPECT_EQ(bytes.size(), 32u);
    std::reverse(bytes.begin(), bytes.end()); // to little-endian
    return u256FromBytes(std::span<const uint8_t, 32>(bytes.data(), 32));
}

const char *kA =
    "123456789abcdef0fedcba9876543210123456789abcdef0fedcba9876543210";
const char *kB =
    "0f0e0d0c0b0a09080706050403020100ffeeddccbbaa99887766554433221100";

TEST(FrKat, Mul)
{
    Fr a = Fr::fromU256(u256FromHexStr(kA));
    Fr b = Fr::fromU256(u256FromHexStr(kB));
    EXPECT_EQ((a * b).toHexString(),
              "1350b4f42ed6ca0a68542755c442c814"
              "212d28a6856ee62ce107b3fb917c331b");
}

TEST(FrKat, Add)
{
    Fr a = Fr::fromU256(u256FromHexStr(kA));
    Fr b = Fr::fromU256(u256FromHexStr(kB));
    EXPECT_EQ((a + b).toHexString(),
              "21426384a5c6e7f905e2bf9c79563311"
              "122334455667787976430fdca9764310");
}

TEST(FrKat, Inverse)
{
    Fr a = Fr::fromU256(u256FromHexStr(kA));
    EXPECT_EQ(a.inverse().toHexString(),
              "0fd586d9834f8a524551a7b05798fd40"
              "65c83ceed28fd46fc4083015afbb6868");
}

TEST(FrKat, Pow)
{
    EXPECT_EQ(Fr::fromUint(5).pow(uint64_t{1000}).toHexString(),
              "250897e0356b83a11904963508fd8ee3"
              "db125e037b8b00a1d66727c21a8466bb");
}

TEST(FrKat, RootOfUnityOrder28)
{
    Fr w = Fr::rootOfUnity(28);
    EXPECT_EQ(w.toHexString(),
              "2a3c09f0a58a7e8500e0a7eb8ef62abc"
              "402d111e41112ed49bd61b6e725b19f0");
    // w^(2^27) = -1 = r - 1.
    Fr half = w;
    for (int i = 0; i < 27; ++i)
        half = half.square();
    EXPECT_EQ(half.toHexString(),
              "30644e72e131a029b85045b68181585d"
              "2833e84879b9709143e1f593f0000000");
    EXPECT_EQ(half, -Fr::one());
}

TEST(FqKat, Mul)
{
    Fq a = Fq::fromU256(u256FromHexStr(kA));
    Fq b = Fq::fromU256(u256FromHexStr(kB));
    EXPECT_EQ((a * b).toHexString(),
              "0c760fa44bc48d9e84498818d971edb1"
              "667dc4403d458fdf5a49f36fd44a66cf");
}

TEST(GoldilocksKat, MulAndInverse)
{
    Gl64 a = Gl64::fromUint(0x123456789abcdef0ULL);
    Gl64 b = Gl64::fromUint(0xfedcba9876543210ULL);
    EXPECT_EQ((a * b).toHexString(), "faeafd1f6c7bbad4");
    EXPECT_EQ(a.inverse().toHexString(), "cc82422076a04151");
}

TEST(FrKat, MontgomeryFormInvisible)
{
    // toU256 of small values must be the values themselves (round-trip
    // through Montgomery form is the identity on canonical integers).
    for (uint64_t v : {0ULL, 1ULL, 2ULL, 123456789ULL}) {
        U256 u = Fr::fromUint(v).toU256();
        EXPECT_EQ(u, U256{v});
    }
}

TEST(FrKat, ModulusMinusOneSquares)
{
    // (-1)^2 == 1 catches sign/reduction slips at the modulus boundary.
    Fr m1 = -Fr::one();
    EXPECT_EQ(m1 * m1, Fr::one());
    EXPECT_EQ(m1.square(), Fr::one());
}

} // namespace
} // namespace bzk
