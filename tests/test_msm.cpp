/**
 * @file
 * Equivalence fuzz for the MSM paths: msmNaive (double-and-add
 * reference), msmPippengerJacobian (scalar bucket loop), and
 * msmPippenger (vectorized batch-affine bucket accumulation), across
 * every wide-field backend this host can run. The batch-affine pass
 * leans on bucket-internal doublings and P + (-P) cancellations, so
 * the fuzz deliberately feeds duplicate points, negated pairs, zero
 * and boundary scalars.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "curve/Msm.h"
#include "ff/FieldBackend.h"
#include "util/Rng.h"

namespace bzk {
namespace {

class BackendGuard
{
  public:
    ~BackendGuard()
    {
        ff::clearForcedBackend();
        ff::forceWideIfma(-1);
    }
};

struct WideConfig
{
    ff::Backend backend;
    int ifma;
};

std::vector<WideConfig>
wideConfigs()
{
    std::vector<WideConfig> cfgs;
    for (ff::Backend b : {ff::Backend::kScalar, ff::Backend::kAvx2,
                          ff::Backend::kAvx512, ff::Backend::kNeon}) {
        if (!ff::backendAvailable(b))
            continue;
        cfgs.push_back({b, 0});
        if (b == ff::Backend::kAvx512 && ff::wideIfmaAvailable())
            cfgs.push_back({b, 1});
    }
    return cfgs;
}

std::string
traceOf(const WideConfig &cfg)
{
    return std::string(ff::backendName(cfg.backend)) +
           (cfg.ifma ? "+ifma" : "-ifma");
}

/** Affine serialization equality: bit-identical, not just same group
 * element. */
void
expectAffineEq(const G1Point &a, const G1Point &b)
{
    G1Affine aa = a.toAffine();
    G1Affine ba = b.toAffine();
    ASSERT_EQ(aa.infinity, ba.infinity);
    if (!aa.infinity) {
        EXPECT_EQ(aa.x.toHexString(), ba.x.toHexString());
        EXPECT_EQ(aa.y.toHexString(), ba.y.toHexString());
    }
}

TEST(Msm, AllPathsMatchNaiveAcrossSizesAndBackends)
{
    BackendGuard guard;
    Rng rng(41);
    for (size_t n : {1u, 2u, 3u, 5u, 8u, 31u, 64u, 257u}) {
        auto points = randomPoints(n, rng);
        std::vector<Fr> scalars(n);
        for (auto &s : scalars)
            s = Fr::random(rng);
        G1Point expect = msmNaive(points, scalars);
        for (const WideConfig &cfg : wideConfigs()) {
            SCOPED_TRACE(traceOf(cfg) + " n=" + std::to_string(n));
            ff::forceBackend(cfg.backend);
            ff::forceWideIfma(cfg.ifma);
            G1Point vec = msmPippenger(points, scalars);
            G1Point jac = msmPippengerJacobian(points, scalars);
            EXPECT_EQ(vec, expect);
            EXPECT_EQ(jac, expect);
            expectAffineEq(vec, expect);
        }
    }
}

TEST(Msm, DuplicatePointsForceBucketDoublings)
{
    // Same point many times with equal digits: the batch-affine pass
    // must take the tangent (doubling) branch, not the chord.
    Rng rng(42);
    auto base = randomPoints(2, rng);
    std::vector<G1Affine> points(24, base[0]);
    std::vector<Fr> scalars(24, Fr::fromUint(5));
    G1Point expect = msmNaive(points, scalars);
    EXPECT_EQ(msmPippenger(points, scalars), expect);
    EXPECT_EQ(msmPippenger(points, scalars, 4), expect);
}

TEST(Msm, NegatedPairsCancelToInfinity)
{
    // P and -P with the same scalar land in the same bucket and must
    // cancel through the batch-affine infinity branch.
    Rng rng(43);
    auto base = randomPoints(4, rng);
    std::vector<G1Affine> points;
    for (const auto &p : base) {
        points.push_back(p);
        G1Affine neg = p;
        neg.y = -neg.y;
        points.push_back(neg);
    }
    std::vector<Fr> scalars(points.size(), Fr::fromUint(3));
    EXPECT_TRUE(msmPippenger(points, scalars).isInfinity());
    // Mixed: one unpaired point survives.
    points.push_back(base[0]);
    scalars.push_back(Fr::fromUint(3));
    G1Point expect = msmNaive(points, scalars);
    EXPECT_EQ(msmPippenger(points, scalars), expect);
    EXPECT_FALSE(expect.isInfinity());
}

TEST(Msm, InfinityInputsAndZeroScalars)
{
    Rng rng(44);
    auto points = randomPoints(9, rng);
    points[2] = G1Affine{}; // explicit affine infinity input
    points[7] = G1Affine{};
    std::vector<Fr> scalars(points.size());
    for (auto &s : scalars)
        s = Fr::random(rng);
    scalars[0] = Fr::zero();
    scalars[5] = Fr::zero();
    scalars[8] = -Fr::one(); // full 254-bit scalar, every window hot
    G1Point expect = msmNaive(points, scalars);
    EXPECT_EQ(msmPippenger(points, scalars), expect);
    EXPECT_EQ(msmPippengerJacobian(points, scalars), expect);
}

TEST(Msm, WindowSweepDoesNotChangeResult)
{
    Rng rng(45);
    auto points = randomPoints(70, rng);
    std::vector<Fr> scalars(70);
    for (auto &s : scalars)
        s = Fr::random(rng);
    G1Point expect = msmNaive(points, scalars);
    for (unsigned c : {1u, 2u, 3u, 5u, 8u, 11u}) {
        EXPECT_EQ(msmPippenger(points, scalars, c), expect) << c;
        EXPECT_EQ(msmPippengerJacobian(points, scalars, c), expect) << c;
    }
    // Widths above 16 are clamped rather than allocating 2^99 buckets.
    EXPECT_EQ(msmPippenger(points, scalars, 99u), expect);
}

TEST(Msm, WindowTableIsMonotonicAndBounded)
{
    unsigned prev = msmWindowBits(1);
    EXPECT_GE(prev, 1u);
    for (size_t lg = 1; lg <= 24; ++lg) {
        unsigned bits = msmWindowBits(size_t{1} << lg);
        EXPECT_GE(bits, prev);
        EXPECT_LE(bits, 16u);
        prev = bits;
    }
    EXPECT_EQ(msmWindowBits(size_t{1} << 14), 10u);
}

TEST(Msm, SizeMismatchThrowsTypedError)
{
    Rng rng(46);
    auto points = randomPoints(4, rng);
    std::vector<Fr> scalars(3, Fr::one());
    try {
        msmPippenger(points, scalars);
        FAIL() << "expected MsmSizeMismatch";
    } catch (const MsmSizeMismatch &e) {
        EXPECT_EQ(e.points, 4u);
        EXPECT_EQ(e.scalars, 3u);
        EXPECT_NE(std::string(e.what()).find("msmPippenger"),
                  std::string::npos);
    }
    EXPECT_THROW(msmNaive(points, scalars), MsmSizeMismatch);
    EXPECT_THROW(msmPippengerJacobian(points, scalars),
                 MsmSizeMismatch);
}

TEST(Msm, BatchToAffineMatchesPerPoint)
{
    Rng rng(47);
    std::vector<G1Point> pts;
    G1Point cur = G1Point::random(rng);
    G1Point stride = G1Point::random(rng);
    for (int i = 0; i < 21; ++i) {
        pts.push_back(cur);
        cur = cur.add(stride);
    }
    pts[3] = G1Point();  // infinity in the middle
    pts[20] = G1Point(); // and at the end
    auto batch = G1Point::batchToAffine(pts);
    ASSERT_EQ(batch.size(), pts.size());
    for (size_t i = 0; i < pts.size(); ++i) {
        G1Affine one = pts[i].toAffine();
        EXPECT_EQ(batch[i].infinity, one.infinity) << i;
        if (!one.infinity) {
            EXPECT_EQ(batch[i].x.toHexString(), one.x.toHexString());
            EXPECT_EQ(batch[i].y.toHexString(), one.y.toHexString());
        }
    }
    EXPECT_TRUE(G1Point::batchToAffine({}).empty());
}

TEST(Msm, VectorizedSweep2e12MatchesJacobian)
{
    // Medium-size sweep (the full 2^14 acceptance sweep runs in
    // bench_micro's cross-check; this keeps tier-1 fast while still
    // covering multi-round pairwise reduction in every bucket).
    Rng rng(48);
    const size_t n = 1 << 12;
    auto points = randomPoints(n, rng);
    std::vector<Fr> scalars(n);
    for (auto &s : scalars)
        s = Fr::random(rng);
    G1Point vec = msmPippenger(points, scalars);
    G1Point jac = msmPippengerJacobian(points, scalars);
    EXPECT_EQ(vec, jac);
    expectAffineEq(vec, jac);
}

} // namespace
} // namespace bzk
