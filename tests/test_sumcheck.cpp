/**
 * @file
 * Tests for the sum-check module: Algorithm 1 completeness/soundness,
 * product sum-checks, Fiat-Shamir consistency, and the GPU drivers.
 */

#include <gtest/gtest.h>

#include <thread>

#include "exec/ExecContext.h"
#include "ff/Fields.h"
#include "gpusim/Device.h"
#include "sumcheck/GpuSumcheck.h"
#include "sumcheck/HighDegreeGate.h"
#include "sumcheck/Sumcheck.h"

namespace bzk {
namespace {

template <typename F>
class SumcheckT : public ::testing::Test
{
};

using Fields = ::testing::Types<Fr, Gl64>;
TYPED_TEST_SUITE(SumcheckT, Fields);

TYPED_TEST(SumcheckT, CompletenessInteractive)
{
    using F = TypeParam;
    Rng rng(1);
    for (unsigned n : {1u, 3u, 6u}) {
        auto poly = Multilinear<F>::random(n, rng);
        std::vector<F> challenges(n);
        for (auto &c : challenges)
            c = F::random(rng);
        auto proof = proveSumcheck(poly, challenges);
        auto verdict =
            verifySumcheck(poly.sumOverHypercube(), proof, challenges);
        ASSERT_TRUE(verdict.ok) << "n=" << n;
        EXPECT_EQ(verdict.final_claim, poly.evaluate(verdict.point));
    }
}

TYPED_TEST(SumcheckT, RejectsWrongSum)
{
    using F = TypeParam;
    Rng rng(2);
    auto poly = Multilinear<F>::random(4, rng);
    std::vector<F> challenges(4);
    for (auto &c : challenges)
        c = F::random(rng);
    auto proof = proveSumcheck(poly, challenges);
    F bad_sum = poly.sumOverHypercube() + F::one();
    EXPECT_FALSE(verifySumcheck(bad_sum, proof, challenges).ok);
}

TYPED_TEST(SumcheckT, RejectsTamperedRound)
{
    using F = TypeParam;
    Rng rng(3);
    auto poly = Multilinear<F>::random(4, rng);
    std::vector<F> challenges(4);
    for (auto &c : challenges)
        c = F::random(rng);
    auto proof = proveSumcheck(poly, challenges);
    for (size_t round = 0; round < 4; ++round) {
        auto bad = proof;
        bad.rounds[round][0] += F::one();
        auto verdict =
            verifySumcheck(poly.sumOverHypercube(), bad, challenges);
        // Either an interior round check fails, or the final claim no
        // longer matches the polynomial.
        bool caught = !verdict.ok ||
                      verdict.final_claim != poly.evaluate(verdict.point);
        EXPECT_TRUE(caught) << "round " << round;
    }
}

TYPED_TEST(SumcheckT, ProofShapeMatchesAlgorithm1)
{
    // Each of the n rounds contributes exactly the pair (pi_i1, pi_i2),
    // and round sums halve consistently: pi_{i+1,1} + pi_{i+1,2} is the
    // fold of round i at r_i.
    using F = TypeParam;
    Rng rng(4);
    unsigned n = 5;
    auto poly = Multilinear<F>::random(n, rng);
    std::vector<F> challenges(n);
    for (auto &c : challenges)
        c = F::random(rng);
    auto proof = proveSumcheck(poly, challenges);
    ASSERT_EQ(proof.rounds.size(), n);
    for (unsigned i = 0; i + 1 < n; ++i) {
        const F &pi1 = proof.rounds[i][0];
        const F &pi2 = proof.rounds[i][1];
        F folded = pi1 + challenges[i] * (pi2 - pi1);
        EXPECT_EQ(proof.rounds[i + 1][0] + proof.rounds[i + 1][1], folded);
    }
}

TYPED_TEST(SumcheckT, FirstRoundSumsAreHalfTableSums)
{
    using F = TypeParam;
    Rng rng(5);
    auto poly = Multilinear<F>::random(3, rng);
    std::vector<F> challenges{F::random(rng), F::random(rng),
                              F::random(rng)};
    auto proof = proveSumcheck(poly, challenges);
    F lo = F::zero(), hi = F::zero();
    for (size_t b = 0; b < 4; ++b) {
        lo += poly.evals()[b];
        hi += poly.evals()[b + 4];
    }
    EXPECT_EQ(proof.rounds[0][0], lo);
    EXPECT_EQ(proof.rounds[0][1], hi);
}

TYPED_TEST(SumcheckT, FiatShamirRoundTrip)
{
    using F = TypeParam;
    Rng rng(6);
    auto poly = Multilinear<F>::random(5, rng);
    F sum = poly.sumOverHypercube();

    Transcript pt("fs-test");
    pt.absorbField("sum", sum);
    auto fs = proveSumcheckFs(poly, pt);

    Transcript vt("fs-test");
    vt.absorbField("sum", sum);
    auto verdict = verifySumcheckFs(sum, fs.proof, vt);
    ASSERT_TRUE(verdict.ok);
    EXPECT_EQ(verdict.point, fs.challenges);
    EXPECT_EQ(verdict.final_claim, poly.evaluate(verdict.point));
}

TYPED_TEST(SumcheckT, FiatShamirBindsStatement)
{
    // A proof generated for one claimed sum must not verify under a
    // transcript that absorbed a different statement.
    using F = TypeParam;
    Rng rng(7);
    auto poly = Multilinear<F>::random(4, rng);
    F sum = poly.sumOverHypercube();

    Transcript pt("fs-test");
    pt.absorbField("sum", sum);
    auto fs = proveSumcheckFs(poly, pt);

    Transcript vt("fs-test");
    vt.absorbField("sum", sum + F::one());
    auto verdict = verifySumcheckFs(sum + F::one(), fs.proof, vt);
    bool caught =
        !verdict.ok || verdict.final_claim != poly.evaluate(verdict.point);
    EXPECT_TRUE(caught);
}

TYPED_TEST(SumcheckT, FsProofBitIdenticalAcrossThreadCounts)
{
    // The fixed-shape chunked reduction must make round polynomials —
    // and hence challenges and the whole proof — independent of the
    // thread count, including n below the serial cutoff.
    using F = TypeParam;
    Rng rng(61);
    for (unsigned n : {3u, 9u, 12u}) {
        auto poly = Multilinear<F>::random(n, rng);
        Transcript st("fs-threads");
        auto serial = proveSumcheckFs(poly, st);

        size_t hw = std::thread::hardware_concurrency();
        for (size_t threads :
             {size_t{1}, size_t{2}, hw ? hw : size_t{4}}) {
            exec::ExecConfig cfg;
            cfg.threads = threads;
            exec::ExecContext exec(cfg);
            Transcript pt("fs-threads");
            auto fs = proveSumcheckFs(poly, pt, &exec);
            ASSERT_EQ(fs.proof.rounds, serial.proof.rounds)
                << "n=" << n << " threads=" << threads;
            EXPECT_EQ(fs.challenges, serial.challenges);
        }
    }
}

TYPED_TEST(SumcheckT, ProductFsProofBitIdenticalAcrossThreadCounts)
{
    using F = TypeParam;
    Rng rng(62);
    std::vector<Multilinear<F>> factors{Multilinear<F>::random(8, rng),
                                        Multilinear<F>::random(8, rng),
                                        Multilinear<F>::random(8, rng)};
    auto serial_factors = factors;
    Transcript st("psc-threads");
    std::vector<F> serial_point;
    auto serial =
        proveProductSumcheckFs(serial_factors, st, &serial_point);

    for (size_t threads : {size_t{2}, size_t{5}}) {
        exec::ExecConfig cfg;
        cfg.threads = threads;
        exec::ExecContext exec(cfg);
        auto par_factors = factors;
        Transcript pt("psc-threads");
        std::vector<F> point;
        auto proof =
            proveProductSumcheckFs(par_factors, pt, &point, &exec);
        ASSERT_EQ(proof.rounds, serial.rounds) << "threads=" << threads;
        EXPECT_EQ(point, serial_point);
    }
}

TYPED_TEST(SumcheckT, ProductSumcheckCompleteness)
{
    using F = TypeParam;
    Rng rng(8);
    for (size_t degree : {1u, 2u, 3u}) {
        unsigned n = 4;
        std::vector<Multilinear<F>> factors;
        for (size_t j = 0; j < degree; ++j)
            factors.push_back(Multilinear<F>::random(n, rng));

        // Claimed sum of the product over the hypercube.
        F sum = F::zero();
        for (size_t b = 0; b < (size_t{1} << n); ++b) {
            F term = F::one();
            for (const auto &f : factors)
                term *= f.evals()[b];
            sum += term;
        }

        auto factors_copy = factors;
        Transcript pt("psc-test");
        pt.absorbField("sum", sum);
        std::vector<F> point;
        auto proof = proveProductSumcheckFs(factors_copy, pt, &point);

        Transcript vt("psc-test");
        vt.absorbField("sum", sum);
        auto verdict = verifyProductSumcheckFs(sum, proof, vt);
        ASSERT_TRUE(verdict.ok) << "degree " << degree;
        EXPECT_EQ(verdict.point, point);

        F expected = F::one();
        for (const auto &f : factors)
            expected *= f.evaluate(verdict.point);
        EXPECT_EQ(verdict.final_claim, expected) << "degree " << degree;

        // The folded factors the prover is left with equal the factor
        // evaluations at the final point.
        for (size_t j = 0; j < degree; ++j)
            EXPECT_EQ(factors_copy[j].evals()[0],
                      factors[j].evaluate(verdict.point));
    }
}

TYPED_TEST(SumcheckT, ProductSumcheckRejectsWrongSum)
{
    using F = TypeParam;
    Rng rng(9);
    std::vector<Multilinear<F>> factors{Multilinear<F>::random(3, rng),
                                        Multilinear<F>::random(3, rng)};
    F sum = F::zero();
    for (size_t b = 0; b < 8; ++b)
        sum += factors[0].evals()[b] * factors[1].evals()[b];

    auto factors_copy = factors;
    Transcript pt("psc-test");
    pt.absorbField("sum", sum);
    auto proof = proveProductSumcheckFs(factors_copy, pt);

    Transcript vt("psc-test");
    vt.absorbField("sum", sum);
    EXPECT_FALSE(verifyProductSumcheckFs(sum + F::one(), proof, vt).ok);
}

/** Satisfied high-degree gate tables: c = a^4 * b pointwise. */
template <typename F>
struct HdgInstance
{
    std::vector<F> tau;
    std::vector<F> eq;
    std::vector<F> a, b, c;
};

template <typename F>
HdgInstance<F>
randomHdgInstance(unsigned n, Rng &rng)
{
    HdgInstance<F> inst;
    inst.tau.resize(n);
    for (auto &t : inst.tau)
        t = F::random(rng);
    inst.eq = eqTable(inst.tau);
    size_t size = size_t{1} << n;
    inst.a.resize(size);
    inst.b.resize(size);
    inst.c.resize(size);
    for (size_t i = 0; i < size; ++i) {
        inst.a[i] = F::random(rng);
        inst.b[i] = F::random(rng);
        inst.c[i] = pow4(inst.a[i]) * inst.b[i];
    }
    return inst;
}

TYPED_TEST(SumcheckT, HighDegreeGateCompleteness)
{
    using F = TypeParam;
    Rng rng(71);
    for (unsigned n : {1u, 3u, 5u}) {
        auto inst = randomHdgInstance<F>(n, rng);
        auto fold = inst; // prover folds in place
        Transcript pt("hdg-test");
        std::vector<F> point;
        auto proof = proveHighDegreeGateFs(fold.eq, fold.a, fold.b,
                                           fold.c, pt, &point);
        ASSERT_EQ(proof.rounds.size(), n);
        for (const auto &g : proof.rounds)
            EXPECT_EQ(g.size(), kHighDegreeGateEvals);

        Transcript vt("hdg-test");
        auto verdict = verifyHighDegreeGateFs(F::zero(), proof, vt);
        ASSERT_TRUE(verdict.ok) << "n=" << n;
        EXPECT_EQ(verdict.point, point);

        // The final claim reduces to the gate polynomial at the
        // sum-check point, evaluated through the folded tables.
        F expected = fold.eq[0] *
                     (pow4(fold.a[0]) * fold.b[0] - fold.c[0]);
        EXPECT_EQ(verdict.final_claim, expected);

        // The folded tables agree with the multilinear extensions.
        EXPECT_EQ(fold.a[0],
                  Multilinear<F>(inst.a).evaluate(verdict.point));
        EXPECT_EQ(fold.c[0],
                  Multilinear<F>(inst.c).evaluate(verdict.point));
    }
}

TYPED_TEST(SumcheckT, HighDegreeGateRejectsUnsatisfiedRow)
{
    using F = TypeParam;
    Rng rng(72);
    auto inst = randomHdgInstance<F>(4, rng);
    inst.c[5] += F::one(); // break the gate identity at one row
    Transcript pt("hdg-test");
    auto proof =
        proveHighDegreeGateFs(inst.eq, inst.a, inst.b, inst.c, pt);
    Transcript vt("hdg-test");
    auto verdict = verifyHighDegreeGateFs(F::zero(), proof, vt);
    // With overwhelming probability eq(tau, 5) != 0, so the sum is
    // nonzero and the first-round check g[0] + g[1] == 0 fails.
    EXPECT_FALSE(verdict.ok);
}

TYPED_TEST(SumcheckT, HighDegreeGateRejectsTamperedRound)
{
    using F = TypeParam;
    Rng rng(73);
    auto inst = randomHdgInstance<F>(4, rng);
    auto fold = inst;
    Transcript pt("hdg-test");
    auto proof = proveHighDegreeGateFs(fold.eq, fold.a, fold.b,
                                       fold.c, pt);
    for (size_t round = 0; round < 4; ++round) {
        for (size_t t : {size_t{0}, size_t{3}, size_t{6}}) {
            auto bad = proof;
            bad.rounds[round][t] += F::one();
            Transcript vt("hdg-test");
            auto verdict =
                verifyHighDegreeGateFs(F::zero(), bad, vt);
            // A tampered evaluation either breaks a round-sum check
            // directly or (via Fiat-Shamir) derails every later
            // challenge; the final claim then cannot match the gate.
            auto check = inst;
            Transcript ct("hdg-test");
            std::vector<F> pt2;
            bool caught = !verdict.ok;
            if (!caught) {
                auto honest = proveHighDegreeGateFs(
                    check.eq, check.a, check.b, check.c, ct, &pt2);
                caught = verdict.point != pt2;
            }
            EXPECT_TRUE(caught)
                << "round " << round << " eval " << t;
        }
    }
}

TYPED_TEST(SumcheckT, HighDegreeGateWrongEvalCountIsRejected)
{
    using F = TypeParam;
    Rng rng(74);
    auto inst = randomHdgInstance<F>(3, rng);
    Transcript pt("hdg-test");
    auto proof =
        proveHighDegreeGateFs(inst.eq, inst.a, inst.b, inst.c, pt);
    auto bad = proof;
    bad.rounds[1].pop_back(); // 6 evals cannot pin a degree-6 poly
    Transcript vt("hdg-test");
    EXPECT_FALSE(verifyHighDegreeGateFs(F::zero(), bad, vt).ok);
}

TYPED_TEST(SumcheckT, HighDegreeGateProofBitIdenticalAcrossThreadCounts)
{
    using F = TypeParam;
    Rng rng(75);
    auto inst = randomHdgInstance<F>(8, rng);

    auto serial = inst;
    Transcript st("hdg-threads");
    std::vector<F> serial_point;
    auto serial_proof = proveHighDegreeGateFs(
        serial.eq, serial.a, serial.b, serial.c, st, &serial_point);

    for (size_t threads : {size_t{2}, size_t{5}}) {
        exec::ExecConfig cfg;
        cfg.threads = threads;
        exec::ExecContext exec(cfg);
        auto par = inst;
        Transcript ptt("hdg-threads");
        std::vector<F> point;
        auto proof = proveHighDegreeGateFs(par.eq, par.a, par.b,
                                           par.c, ptt, &point, &exec);
        ASSERT_EQ(proof.rounds, serial_proof.rounds)
            << "threads=" << threads;
        EXPECT_EQ(point, serial_point);
    }
}

class GpuSumcheckTest : public ::testing::Test
{
  protected:
    gpusim::Device dev_{gpusim::DeviceSpec::v100()};
};

TEST_F(GpuSumcheckTest, FunctionalProofsVerify)
{
    GpuSumcheckOptions opt;
    opt.functional = 2;
    Rng rng(10);
    std::vector<SumcheckProof<Fr>> proofs;
    PipelinedSumcheckGpu(dev_, opt).run(4, 8, rng, &proofs);
    ASSERT_EQ(proofs.size(), 2u);
    for (const auto &proof : proofs)
        EXPECT_EQ(proof.rounds.size(), 8u);
}

TEST_F(GpuSumcheckTest, DriversAgreeFunctionally)
{
    GpuSumcheckOptions opt;
    opt.functional = 2;
    Rng rng1(11), rng2(11);
    std::vector<SumcheckProof<Fr>> a, b;
    PipelinedSumcheckGpu(dev_, opt).run(4, 6, rng1, &a);
    IntuitiveSumcheckGpu(dev_, opt).run(4, 6, rng2, &b);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i].rounds, b[i].rounds);
}

TEST_F(GpuSumcheckTest, PipelinedThroughputWins)
{
    GpuSumcheckOptions opt;
    opt.functional = 0;
    Rng rng(1);
    auto pipe = PipelinedSumcheckGpu(dev_, opt).run(256, 14, rng);
    auto base = IntuitiveSumcheckGpu(dev_, opt).run(256, 14, rng);
    EXPECT_GT(pipe.throughput_per_ms, base.throughput_per_ms);
}

TEST_F(GpuSumcheckTest, AdvantageGrowsForSmallInstances)
{
    GpuSumcheckOptions opt;
    opt.functional = 0;
    Rng rng(1);
    auto speedup = [&](unsigned n) {
        auto pipe = PipelinedSumcheckGpu(dev_, opt).run(256, n, rng);
        auto base = IntuitiveSumcheckGpu(dev_, opt).run(256, n, rng);
        return pipe.throughput_per_ms / base.throughput_per_ms;
    };
    EXPECT_GT(speedup(10), speedup(16));
}

TEST_F(GpuSumcheckTest, PipelinedLatencyWorse)
{
    GpuSumcheckOptions opt;
    opt.functional = 0;
    Rng rng(1);
    auto pipe = PipelinedSumcheckGpu(dev_, opt).run(128, 14, rng);
    auto base = IntuitiveSumcheckGpu(dev_, opt).run(128, 14, rng);
    EXPECT_GT(pipe.first_latency_ms, base.first_latency_ms);
}

TEST_F(GpuSumcheckTest, PingPongMemorySmallerThanStagedBatch)
{
    GpuSumcheckOptions opt;
    opt.functional = 0;
    Rng rng(1);
    auto pipe = PipelinedSumcheckGpu(dev_, opt).run(64, 14, rng);
    auto base = IntuitiveSumcheckGpu(dev_, opt).run(64, 14, rng);
    EXPECT_LT(pipe.peak_device_bytes, base.peak_device_bytes);
}

TEST_F(GpuSumcheckTest, UtilizationHigherWhenPipelined)
{
    GpuSumcheckOptions opt;
    opt.functional = 0;
    Rng rng(1);
    auto pipe = PipelinedSumcheckGpu(dev_, opt).run(256, 12, rng);
    auto base = IntuitiveSumcheckGpu(dev_, opt).run(256, 12, rng);
    EXPECT_GT(pipe.utilization, base.utilization);
}

} // namespace
} // namespace bzk
