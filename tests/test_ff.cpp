/**
 * @file
 * Unit and property tests for the finite-field substrate: U256, the
 * Montgomery fields (BN254 Fr/Fq), Goldilocks, and the NTT.
 */

#include <gtest/gtest.h>

#include "ff/Fields.h"
#include "ff/Ntt.h"
#include "util/Rng.h"

namespace bzk {
namespace {

TEST(U256, AddSubRoundTrip)
{
    U256 a{0xffffffffffffffffULL, 1, 2, 3};
    U256 b{5, 0, 0, 0};
    uint64_t carry = 0;
    U256 s = addCarry(a, b, carry);
    EXPECT_EQ(carry, 0u);
    uint64_t borrow = 0;
    U256 back = subBorrow(s, b, borrow);
    EXPECT_EQ(borrow, 0u);
    EXPECT_EQ(back, a);
}

TEST(U256, CarryPropagates)
{
    U256 a{~0ULL, ~0ULL, ~0ULL, ~0ULL};
    uint64_t carry = 0;
    U256 s = addCarry(a, U256{1}, carry);
    EXPECT_EQ(carry, 1u);
    EXPECT_TRUE(s.isZero());
}

TEST(U256, Compare)
{
    EXPECT_LT(cmp(U256{1}, U256{2}), 0);
    EXPECT_EQ(cmp(U256{7}, U256{7}), 0);
    EXPECT_GT(cmp(U256{0, 0, 0, 1}, U256{~0ULL, ~0ULL, ~0ULL, 0}), 0);
}

TEST(U256, BitLength)
{
    EXPECT_EQ(U256{}.bitLength(), 0u);
    EXPECT_EQ(U256{1}.bitLength(), 1u);
    EXPECT_EQ(U256{0x80}.bitLength(), 8u);
    EXPECT_EQ((U256{0, 0, 0, 1}).bitLength(), 193u);
}

TEST(U256, BytesRoundTrip)
{
    U256 v{0x0123456789abcdefULL, 0xfedcba9876543210ULL, 42, 7};
    uint8_t buf[32];
    u256ToBytes(v, std::span<uint8_t, 32>(buf, 32));
    EXPECT_EQ(u256FromBytes(std::span<const uint8_t, 32>(buf, 32)), v);
}

TEST(U256, NegInv64)
{
    // Verify m * (-m^{-1}) == -1 (mod 2^64) for the BN254 moduli.
    uint64_t m = Bn254FrParams::kModulus.limb[0];
    EXPECT_EQ(m * (~negInv64(m) + 1), 1ULL);
}

/** Typed property tests shared by all field implementations. */
template <typename F>
class FieldTest : public ::testing::Test
{
};

using FieldTypes = ::testing::Types<Fr, Fq, Gl64>;
TYPED_TEST_SUITE(FieldTest, FieldTypes);

TYPED_TEST(FieldTest, AdditiveIdentity)
{
    using F = TypeParam;
    Rng rng(1);
    for (int i = 0; i < 50; ++i) {
        F a = F::random(rng);
        EXPECT_EQ(a + F::zero(), a);
        EXPECT_EQ(a - a, F::zero());
        EXPECT_EQ(a + (-a), F::zero());
    }
}

TYPED_TEST(FieldTest, MultiplicativeIdentity)
{
    using F = TypeParam;
    Rng rng(2);
    for (int i = 0; i < 50; ++i) {
        F a = F::random(rng);
        EXPECT_EQ(a * F::one(), a);
        EXPECT_EQ(F::one() * a, a);
    }
}

TYPED_TEST(FieldTest, MulCommutativeAssociative)
{
    using F = TypeParam;
    Rng rng(3);
    for (int i = 0; i < 50; ++i) {
        F a = F::random(rng), b = F::random(rng), c = F::random(rng);
        EXPECT_EQ(a * b, b * a);
        EXPECT_EQ((a * b) * c, a * (b * c));
    }
}

TYPED_TEST(FieldTest, Distributive)
{
    using F = TypeParam;
    Rng rng(4);
    for (int i = 0; i < 50; ++i) {
        F a = F::random(rng), b = F::random(rng), c = F::random(rng);
        EXPECT_EQ(a * (b + c), a * b + a * c);
    }
}

TYPED_TEST(FieldTest, InverseIsInverse)
{
    using F = TypeParam;
    Rng rng(5);
    for (int i = 0; i < 25; ++i) {
        F a = F::random(rng);
        if (a.isZero())
            continue;
        EXPECT_EQ(a * a.inverse(), F::one());
    }
}

TYPED_TEST(FieldTest, SquareMatchesMul)
{
    using F = TypeParam;
    Rng rng(6);
    for (int i = 0; i < 50; ++i) {
        F a = F::random(rng);
        EXPECT_EQ(a.square(), a * a);
        EXPECT_EQ(a.dbl(), a + a);
    }
}

TYPED_TEST(FieldTest, PowMatchesRepeatedMul)
{
    using F = TypeParam;
    Rng rng(7);
    F a = F::random(rng);
    F acc = F::one();
    for (uint64_t e = 0; e < 20; ++e) {
        EXPECT_EQ(a.pow(e), acc);
        acc *= a;
    }
}

TYPED_TEST(FieldTest, BytesRoundTrip)
{
    using F = TypeParam;
    Rng rng(8);
    for (int i = 0; i < 25; ++i) {
        F a = F::random(rng);
        uint8_t buf[F::kNumBytes];
        a.toBytes(buf);
        EXPECT_EQ(F::fromBytes(buf), a);
    }
}

TYPED_TEST(FieldTest, FromUintHomomorphic)
{
    using F = TypeParam;
    EXPECT_EQ(F::fromUint(3) * F::fromUint(5), F::fromUint(15));
    EXPECT_EQ(F::fromUint(7) + F::fromUint(8), F::fromUint(15));
    EXPECT_EQ(F::fromUint(0), F::zero());
    EXPECT_EQ(F::fromUint(1), F::one());
}

TYPED_TEST(FieldTest, RootOfUnityHasExactOrder)
{
    using F = TypeParam;
    unsigned k = std::min(8u, F::kTwoAdicity);
    F w = F::rootOfUnity(k);
    EXPECT_EQ(w.pow(uint64_t{1} << k), F::one());
    EXPECT_NE(w.pow(uint64_t{1} << (k - 1)), F::one());
}

TEST(Fr, KnownModularReduction)
{
    // (p - 1) + 2 == 1 (mod p)
    uint64_t borrow = 0;
    U256 pm1 = subBorrow(Fr::kModulus, U256{1}, borrow);
    Fr a = Fr::fromU256(pm1);
    EXPECT_EQ(a + Fr::fromUint(2), Fr::one());
}

TEST(Fr, FromU256ReducesOversized)
{
    // 2^256 - 1 reduces to (2^256 - 1) mod p; verify via arithmetic:
    // fromU256(x) + 1 == fromU256(x + 1 computed mod p).
    U256 all{~0ULL, ~0ULL, ~0ULL, ~0ULL};
    Fr a = Fr::fromU256(all);
    Fr b = a + Fr::one();
    uint64_t carry = 0;
    U256 all_plus = addCarry(all, U256{1}, carry); // wraps to 0, carry 1
    EXPECT_TRUE(all_plus.isZero());
    // 2^256 mod p equals Montgomery R mod p; check b == R as a field elt.
    Fr r256 = Fr::fromU256(shiftLeftMod(U256{1}, 256, Fr::kModulus));
    EXPECT_EQ(b, r256);
}

TEST(Goldilocks, OverflowCorners)
{
    Gl64 max = Gl64::fromUint(Gl64::kModulus - 1);
    EXPECT_EQ(max + Gl64::one(), Gl64::zero());
    EXPECT_EQ(Gl64::zero() - Gl64::one(), max);
    EXPECT_EQ(max * max, Gl64::one()); // (-1)^2 = 1
}

template <typename F>
class NttTest : public ::testing::Test
{
};

using NttFields = ::testing::Types<Fr, Gl64>;
TYPED_TEST_SUITE(NttTest, NttFields);

TYPED_TEST(NttTest, RoundTrip)
{
    using F = TypeParam;
    Rng rng(9);
    for (unsigned logn : {1u, 4u, 8u}) {
        std::vector<F> data(size_t{1} << logn);
        for (auto &x : data)
            x = F::random(rng);
        auto orig = data;
        ntt(data);
        intt(data);
        EXPECT_EQ(data, orig) << "size 2^" << logn;
    }
}

TYPED_TEST(NttTest, MatchesNaiveEvaluation)
{
    using F = TypeParam;
    Rng rng(10);
    unsigned logn = 4;
    size_t n = size_t{1} << logn;
    std::vector<F> coeffs(n);
    for (auto &c : coeffs)
        c = F::random(rng);
    auto evals = coeffs;
    ntt(evals);

    F w = F::rootOfUnity(logn);
    for (size_t i = 0; i < n; ++i) {
        F x = w.pow(static_cast<uint64_t>(i));
        F expect = F::zero();
        F xp = F::one();
        for (size_t j = 0; j < n; ++j) {
            expect += coeffs[j] * xp;
            xp *= x;
        }
        EXPECT_EQ(evals[i], expect) << "point " << i;
    }
}

TYPED_TEST(NttTest, ConvolutionProperty)
{
    // Pointwise product in evaluation domain == cyclic convolution.
    using F = TypeParam;
    Rng rng(11);
    size_t n = 8;
    std::vector<F> a(n), b(n);
    for (size_t i = 0; i < n / 2; ++i) {
        a[i] = F::random(rng);
        b[i] = F::random(rng);
    }
    // Naive product (degree < n so no wrap).
    std::vector<F> naive(n, F::zero());
    for (size_t i = 0; i < n / 2; ++i)
        for (size_t j = 0; j < n / 2; ++j)
            naive[i + j] += a[i] * b[j];

    auto fa = a, fb = b;
    ntt(fa);
    ntt(fb);
    for (size_t i = 0; i < n; ++i)
        fa[i] *= fb[i];
    intt(fa);
    EXPECT_EQ(fa, naive);
}

} // namespace
} // namespace bzk
