/**
 * @file
 * Parameterized property sweeps across sizes and seeds: protocol
 * completeness at every size, code linearity, scheduling invariants of
 * the GPU simulator, and pipeline-dominance properties of the cost
 * model.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include <unistd.h>

#include "core/DurableService.h"
#include "core/TensorPcs.h"
#include "obs/Metrics.h"
#include "encoder/SpielmanCode.h"
#include "ff/Fields.h"
#include "gpusim/Device.h"
#include "merkle/GpuMerkle.h"
#include "merkle/MerkleTree.h"
#include "poly/Multilinear.h"
#include "sumcheck/GpuSumcheck.h"
#include "sumcheck/Sumcheck.h"

namespace bzk {
namespace {

/** Sum-check completeness for every variable count 1..12. */
class SumcheckSizeSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SumcheckSizeSweep, CompletenessHoldsAtEverySize)
{
    unsigned n = GetParam();
    Rng rng(1000 + n);
    auto poly = Multilinear<Fr>::random(n, rng);
    Fr sum = poly.sumOverHypercube();
    Transcript pt("sweep");
    pt.absorbField("sum", sum);
    auto fs = proveSumcheckFs(poly, pt);
    Transcript vt("sweep");
    vt.absorbField("sum", sum);
    auto verdict = verifySumcheckFs(sum, fs.proof, vt);
    ASSERT_TRUE(verdict.ok);
    EXPECT_EQ(verdict.final_claim, poly.evaluate(verdict.point));
}

INSTANTIATE_TEST_SUITE_P(Vars1To12, SumcheckSizeSweep,
                         ::testing::Range(1u, 13u));

/** PCS round trips for every supported size 6..12. */
class PcsSizeSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PcsSizeSweep, OpenVerifyAtEverySize)
{
    unsigned n = GetParam();
    Rng rng(2000 + n);
    TensorPcs<Fr> pcs(n, 42);
    std::vector<Fr> poly(size_t{1} << n);
    for (auto &p : poly)
        p = Fr::random(rng);
    auto state = pcs.commit(poly);
    std::vector<Fr> point(n);
    for (auto &p : point)
        p = Fr::random(rng);
    Fr value = pcs.evaluate(state, point);

    Transcript pt("sweep");
    pt.absorbDigest("root", state.commitment.root);
    auto proof = pcs.open(state, point, pt);
    Transcript vt("sweep");
    vt.absorbDigest("root", state.commitment.root);
    EXPECT_TRUE(pcs.verify(state.commitment, point, value, proof, vt));
}

INSTANTIATE_TEST_SUITE_P(Vars6To12, PcsSizeSweep,
                         ::testing::Range(6u, 13u));

/** Encoder linearity and systematicity across message lengths. */
class EncoderSizeSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(EncoderSizeSweep, LinearAndSystematicAtEverySize)
{
    size_t k = size_t{1} << GetParam();
    Rng rng(3000 + GetParam());
    SpielmanCode<Gl64> code(k, 7);
    std::vector<Gl64> x(k), y(k), combo(k);
    Gl64 a = Gl64::random(rng), b = Gl64::random(rng);
    for (size_t i = 0; i < k; ++i) {
        x[i] = Gl64::random(rng);
        y[i] = Gl64::random(rng);
        combo[i] = a * x[i] + b * y[i];
    }
    auto ex = code.encode(x);
    auto ey = code.encode(y);
    auto ec = code.encode(combo);
    ASSERT_EQ(ec.size(), 2 * k);
    for (size_t i = 0; i < 2 * k; ++i)
        EXPECT_EQ(ec[i], a * ex[i] + b * ey[i]) << i;
    for (size_t i = 0; i < k; ++i)
        EXPECT_EQ(ex[i], x[i]);
}

INSTANTIATE_TEST_SUITE_P(K32To4096, EncoderSizeSweep,
                         ::testing::Range(5u, 13u));

/** Merkle hash-count invariant (2N-1) across sizes. */
class MerkleSizeSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(MerkleSizeSweep, CompressionCountAndPathsAtEverySize)
{
    size_t n = size_t{1} << GetParam();
    std::vector<uint8_t> data(64 * n);
    for (size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<uint8_t>(i * 7 + GetParam());
    MerkleTree t = MerkleTree::build(data);
    EXPECT_EQ(t.compressions(), 2 * n - 1);
    // A few inclusion proofs per size.
    for (size_t leaf : {size_t{0}, n / 2, n - 1}) {
        auto p = t.path(leaf);
        EXPECT_EQ(p.siblings.size(), static_cast<size_t>(GetParam()));
        EXPECT_TRUE(MerkleTree::verifyPath(t.root(), t.leaf(leaf), p));
    }
}

INSTANTIATE_TEST_SUITE_P(N2To1024, MerkleSizeSweep,
                         ::testing::Range(1u, 11u));

/**
 * GPU simulator invariants under random op soups: lane capacity is
 * never exceeded, streams stay ordered, utilization stays in [0, 1].
 */
class SchedulerFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(SchedulerFuzz, InvariantsHoldOnRandomWorkloads)
{
    Rng rng(GetParam());
    gpusim::DeviceSpec spec;
    spec.name = "fuzz";
    spec.cuda_cores = 128;
    spec.clock_ghz = 1.0;
    spec.mem_bw_gbps = 50.0;
    spec.link_gbps = 5.0;
    spec.device_mem_bytes = 1 << 30;
    gpusim::Device dev(spec);

    std::vector<gpusim::StreamId> streams;
    for (int i = 0; i < 4; ++i)
        streams.push_back(dev.createStream());

    std::map<gpusim::StreamId, double> last_end;
    std::vector<gpusim::OpId> ops;
    for (int i = 0; i < 120; ++i) {
        auto s = streams[rng.nextBounded(streams.size())];
        gpusim::OpId dep = gpusim::kNoOp;
        if (!ops.empty() && rng.nextBounded(4) == 0)
            dep = ops[rng.nextBounded(ops.size())];
        gpusim::OpId op;
        switch (rng.nextBounded(3)) {
          case 0: {
            gpusim::KernelDesc k;
            k.name = "fuzz";
            k.lanes = 16.0 + static_cast<double>(rng.nextBounded(160));
            k.threads = 1 + rng.nextBounded(400);
            k.cycles_per_thread = 100.0 + rng.nextBounded(100000);
            op = dev.launchKernel(s, k, dep);
            break;
          }
          case 1:
            op = dev.copyH2D(s, 1 + rng.nextBounded(1 << 22), dep);
            break;
          default:
            op = dev.copyD2H(s, 1 + rng.nextBounded(1 << 22), dep);
        }
        // Stream ordering.
        EXPECT_GE(dev.opStart(op) + 1e-9, last_end[s]) << "op " << i;
        last_end[s] = dev.opEnd(op);
        // Dependency ordering.
        if (dep != gpusim::kNoOp) {
            EXPECT_GE(dev.opStart(op) + 1e-9, dev.opEnd(dep));
        }
        ops.push_back(op);
    }

    // Lane capacity: at every kernel start, total reserved lanes of
    // overlapping kernels stays within the device.
    const auto &records = dev.ops();
    for (const auto &probe : records) {
        if (probe.kind != gpusim::OpRecord::Kind::Kernel)
            continue;
        double t = probe.start_ms + 1e-9;
        double used = 0.0;
        for (const auto &other : records) {
            if (other.kind != gpusim::OpRecord::Kind::Kernel)
                continue;
            if (other.start_ms <= t && t < other.end_ms)
                used += other.lanes;
        }
        EXPECT_LE(used, spec.cuda_cores + 1e-6);
    }

    // Utilization bounded.
    for (const auto &sample : dev.utilizationTrace(dev.now() / 50.0)) {
        EXPECT_GE(sample.utilization, -1e-9);
        EXPECT_LE(sample.utilization, 1.0 + 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerFuzz,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u,
                                           77u, 88u));

/**
 * Pipeline dominance: across a size sweep, the pipelined Merkle and
 * sum-check drivers never lose to the intuitive ones on throughput,
 * and never win on first-item latency.
 */
class PipelineDominance : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PipelineDominance, MerkleThroughputAndLatencyOrdering)
{
    unsigned logn = GetParam();
    gpusim::Device dev(gpusim::DeviceSpec::a100());
    Rng rng(1);
    GpuMerkleOptions opt;
    opt.functional = 0;
    auto pipe =
        PipelinedMerkleGpu(dev, opt).run(128, size_t{1} << logn, rng);
    auto base =
        IntuitiveMerkleGpu(dev, opt).run(32, size_t{1} << logn, rng);
    EXPECT_GE(pipe.throughput_per_ms, base.throughput_per_ms);
    // The latency penalty of pipelining (Table 6) only bites once tree
    // work dwarfs the baseline's per-layer host-sync overhead; below
    // ~2^16 blocks the intuitive scheme is sync-bound and can be slower
    // on latency too.
    if (logn >= 16) {
        EXPECT_GE(pipe.first_latency_ms, base.first_latency_ms * 0.99);
    }
}

TEST_P(PipelineDominance, SumcheckThroughputOrdering)
{
    unsigned n = GetParam();
    gpusim::Device dev(gpusim::DeviceSpec::a100());
    Rng rng(2);
    GpuSumcheckOptions opt;
    opt.functional = 0;
    auto pipe = PipelinedSumcheckGpu(dev, opt).run(128, n, rng);
    auto base = IntuitiveSumcheckGpu(dev, opt).run(32, n, rng);
    EXPECT_GE(pipe.throughput_per_ms, base.throughput_per_ms);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PipelineDominance,
                         ::testing::Values(10u, 12u, 14u, 16u, 18u, 20u));

/**
 * Idempotency of the durable proof service: for random task mixes with
 * duplicate submissions, a crash, and a double replay, every unique
 * task id ends with exactly one proof, and every absorbed duplicate is
 * counted in bzk_journal_duplicates_total.
 */
class DurableIdempotency : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(DurableIdempotency, DuplicatesAndDoubleReplayYieldOneProof)
{
    uint64_t seed = GetParam();
    Rng rng(seed);
    char tmpl[] = "/tmp/bzk_idem_XXXXXX";
    std::string dir = ::mkdtemp(tmpl);

    // Random mix: 3-5 unique tasks, sizes 8-9, random priorities,
    // random protocol kinds (the journal carries the kind, so replay
    // and idempotency hold identically for both protocols).
    size_t unique = 3 + rng.nextBounded(3);
    std::vector<DurableTaskSpec> specs;
    for (size_t i = 0; i < unique; ++i) {
        DurableTaskSpec spec;
        spec.id = 500 + i;
        spec.n_vars = 8 + static_cast<unsigned>(rng.nextBounded(2));
        spec.seed = seed;
        spec.priority = static_cast<int>(rng.nextBounded(4));
        spec.kind = rng.nextBounded(2)
                        ? sched::ProtocolKind::HighDegreeGate
                        : sched::ProtocolKind::TableCommit;
        specs.push_back(spec);
    }
    // Interleave duplicates: every submission after the first of an id
    // must be absorbed, not journaled as new work.
    std::vector<DurableTaskSpec> submissions = specs;
    size_t duplicates = 1 + rng.nextBounded(4);
    for (size_t i = 0; i < duplicates; ++i)
        submissions.push_back(specs[rng.nextBounded(specs.size())]);
    for (size_t i = submissions.size(); i > 1; --i)
        std::swap(submissions[i - 1],
                  submissions[rng.nextBounded(i)]);

    gpusim::Device dev(gpusim::DeviceSpec::gh200());
    obs::MetricsRegistry metrics;
    size_t absorbed_at_submit = 0;
    {
        DurableProofService service(dev, {dir}, {}, &metrics);
        for (const auto &spec : submissions)
            if (!service.submit(spec))
                ++absorbed_at_submit;
        EXPECT_EQ(service.pendingCount(), unique);
        EXPECT_EQ(absorbed_at_submit, submissions.size() - unique);
        EXPECT_EQ(
            metrics.counter("bzk_journal_duplicates_total").value(),
            static_cast<double>(absorbed_at_submit));
        // Crash at a random stage boundary of a random victim task.
        uint64_t victim = specs[rng.nextBounded(specs.size())].id;
        auto stage = static_cast<ProveStage>(rng.nextBounded(4));
        service.processAll([&](uint64_t task_id, ProveStage at) {
            return !(task_id == victim && at == stage);
        });
    }

    // Double replay: restart once, re-submit the same mix (every one
    // is now a duplicate of a pending or completed task), restart
    // again without processing in between.
    {
        DurableProofService service(dev, {dir});
        for (const auto &spec : submissions)
            EXPECT_FALSE(service.submit(spec));
    }
    DurableProofService service(dev, {dir});
    EXPECT_EQ(service.pendingCount() + service.proofs().size(), unique);
    service.processAll();
    EXPECT_EQ(service.pendingCount(), 0u);
    EXPECT_EQ(service.proofs().size(), unique);
    EXPECT_TRUE(service.verifyAll());

    for (uint64_t i = 1; i <= 16; ++i)
        ::unlink(journal::Journal::segmentPath(dir, i).c_str());
    ::rmdir(dir.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DurableIdempotency,
                         ::testing::Range<uint64_t>(1, 5));

TEST(DurableMixedBatch, ProcessesAndVerifiesBothKinds)
{
    char tmpl[] = "/tmp/bzk_mixed_XXXXXX";
    std::string dir = ::mkdtemp(tmpl);
    gpusim::Device dev(gpusim::DeviceSpec::gh200());
    obs::MetricsRegistry metrics;
    {
        DurableProofService service(dev, {dir}, {}, &metrics);
        for (uint64_t i = 0; i < 4; ++i) {
            DurableTaskSpec spec;
            spec.id = 600 + i;
            spec.n_vars = 8;
            spec.seed = 42;
            spec.kind = (i % 2)
                            ? sched::ProtocolKind::HighDegreeGate
                            : sched::ProtocolKind::TableCommit;
            ASSERT_TRUE(service.submit(spec));
        }
        EXPECT_EQ(service.processAll(), 4u);
        // verifyAll dispatches on each blob's own serialization tag.
        EXPECT_TRUE(service.verifyAll());
        ASSERT_EQ(service.proofs().size(), 4u);
        for (const auto &[id, completion] : service.proofs()) {
            ASSERT_FALSE(completion.proof.empty());
            // Tag 0x01 = Snark (table-commit), 0x04 = high-degree.
            EXPECT_EQ(completion.proof[0],
                      (id % 2) ? 0x04 : 0x01)
                << "task " << id;
        }
        EXPECT_DOUBLE_EQ(
            metrics
                .counter(
                    "bzk_journal_proofs_completed_table_commit_total")
                .value(),
            2.0);
        EXPECT_DOUBLE_EQ(
            metrics
                .counter("bzk_journal_proofs_completed_high_degree_"
                         "gate_total")
                .value(),
            2.0);
    }

    // A restart on the same journal restores both kinds' proofs and
    // still verifies them.
    DurableProofService restarted(dev, {dir});
    EXPECT_EQ(restarted.recovery().proofs_restored, 4u);
    EXPECT_EQ(restarted.pendingCount(), 0u);
    EXPECT_TRUE(restarted.verifyAll());

    for (uint64_t i = 1; i <= 16; ++i)
        ::unlink(journal::Journal::segmentPath(dir, i).c_str());
    ::rmdir(dir.c_str());
}

} // namespace
} // namespace bzk
