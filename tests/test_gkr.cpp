/**
 * @file
 * Tests for the layered-circuit GKR protocol: circuit evaluation,
 * prove/verify completeness across depths and widths, and rejection of
 * tampered outputs, rounds and claims.
 */

#include <gtest/gtest.h>

#include "ff/Fields.h"
#include "gkr/Gkr.h"
#include "gkr/GpuGkr.h"
#include "gkr/LayeredCircuit.h"
#include "gpusim/Device.h"

namespace bzk {
namespace {

template <typename F>
class GkrT : public ::testing::Test
{
};

using Fields = ::testing::Types<Fr, Gl64>;
TYPED_TEST_SUITE(GkrT, Fields);

/** ((a+b) * (c+d)) style two-layer circuit on four inputs. */
template <typename F>
LayeredCircuit<F>
tinyCircuit()
{
    LayeredCircuit<F> c(2); // 4 inputs
    c.addLayer({{LayeredGate::Kind::Add, 0, 1},
                {LayeredGate::Kind::Add, 2, 3}});
    c.addLayer({{LayeredGate::Kind::Mul, 0, 1}});
    return c;
}

TYPED_TEST(GkrT, EvaluateLayers)
{
    using F = TypeParam;
    auto c = tinyCircuit<F>();
    std::vector<F> inputs{F::fromUint(1), F::fromUint(2), F::fromUint(3),
                          F::fromUint(4)};
    auto values = c.evaluate(inputs);
    ASSERT_EQ(values.size(), 3u);
    EXPECT_EQ(values[1][0], F::fromUint(3)); // 1+2
    EXPECT_EQ(values[1][1], F::fromUint(7)); // 3+4
    EXPECT_EQ(values[2][0], F::fromUint(21)); // 3*7
}

TYPED_TEST(GkrT, TinyCircuitRoundTrip)
{
    using F = TypeParam;
    auto c = tinyCircuit<F>();
    std::vector<F> inputs{F::fromUint(1), F::fromUint(2), F::fromUint(3),
                          F::fromUint(4)};
    Gkr<F> gkr(c);
    Transcript pt("gkr-test");
    auto proof = gkr.prove(inputs, pt);
    EXPECT_EQ(proof.outputs[0], F::fromUint(21));

    Transcript vt("gkr-test");
    EXPECT_TRUE(gkr.verify(proof, inputs, vt));
}

TYPED_TEST(GkrT, RandomCircuitsAcrossShapes)
{
    using F = TypeParam;
    Rng rng(1);
    struct Shape
    {
        unsigned in_vars;
        size_t depth;
        size_t width;
    };
    for (Shape s : {Shape{3, 2, 8}, Shape{4, 4, 16}, Shape{5, 3, 20},
                    Shape{2, 6, 4}}) {
        auto c = randomLayeredCircuit<F>(s.in_vars, s.depth, s.width,
                                         rng);
        std::vector<F> inputs(size_t{1} << s.in_vars);
        for (auto &x : inputs)
            x = F::random(rng);
        Gkr<F> gkr(c);
        Transcript pt("gkr-test");
        auto proof = gkr.prove(inputs, pt);
        Transcript vt("gkr-test");
        EXPECT_TRUE(gkr.verify(proof, inputs, vt))
            << "shape " << s.in_vars << "/" << s.depth << "/" << s.width;
    }
}

TYPED_TEST(GkrT, ProvedOutputsMatchEvaluation)
{
    using F = TypeParam;
    Rng rng(2);
    auto c = randomLayeredCircuit<F>(4, 3, 12, rng);
    std::vector<F> inputs(16);
    for (auto &x : inputs)
        x = F::random(rng);
    Gkr<F> gkr(c);
    Transcript pt("gkr-test");
    auto proof = gkr.prove(inputs, pt);
    auto values = c.evaluate(inputs);
    EXPECT_EQ(proof.outputs, values.back());
}

TYPED_TEST(GkrT, RejectsForgedOutput)
{
    // The core soundness property: claiming a wrong output fails.
    using F = TypeParam;
    Rng rng(3);
    auto c = randomLayeredCircuit<F>(4, 3, 12, rng);
    std::vector<F> inputs(16);
    for (auto &x : inputs)
        x = F::random(rng);
    Gkr<F> gkr(c);
    Transcript pt("gkr-test");
    auto proof = gkr.prove(inputs, pt);
    proof.outputs[0] += F::one();
    Transcript vt("gkr-test");
    EXPECT_FALSE(gkr.verify(proof, inputs, vt));
}

TYPED_TEST(GkrT, RejectsWrongInputs)
{
    using F = TypeParam;
    Rng rng(4);
    auto c = randomLayeredCircuit<F>(4, 2, 10, rng);
    std::vector<F> inputs(16);
    for (auto &x : inputs)
        x = F::random(rng);
    Gkr<F> gkr(c);
    Transcript pt("gkr-test");
    auto proof = gkr.prove(inputs, pt);
    auto other = inputs;
    other[5] += F::one();
    Transcript vt("gkr-test");
    EXPECT_FALSE(gkr.verify(proof, other, vt));
}

TYPED_TEST(GkrT, RejectsTamperedRound)
{
    using F = TypeParam;
    Rng rng(5);
    auto c = randomLayeredCircuit<F>(3, 3, 8, rng);
    std::vector<F> inputs(8);
    for (auto &x : inputs)
        x = F::random(rng);
    Gkr<F> gkr(c);
    Transcript pt("gkr-test");
    auto proof = gkr.prove(inputs, pt);
    for (size_t layer : {size_t{0}, proof.layers.size() - 1}) {
        auto bad = proof;
        bad.layers[layer].rounds[1][2] += F::one();
        Transcript vt("gkr-test");
        EXPECT_FALSE(gkr.verify(bad, inputs, vt)) << "layer " << layer;
    }
}

TYPED_TEST(GkrT, RejectsTamperedClaims)
{
    using F = TypeParam;
    Rng rng(6);
    auto c = randomLayeredCircuit<F>(3, 2, 8, rng);
    std::vector<F> inputs(8);
    for (auto &x : inputs)
        x = F::random(rng);
    Gkr<F> gkr(c);
    Transcript pt("gkr-test");
    auto proof = gkr.prove(inputs, pt);
    auto bad = proof;
    bad.layers[0].vx += F::one();
    Transcript vt("gkr-test");
    EXPECT_FALSE(gkr.verify(bad, inputs, vt));
    bad = proof;
    bad.layers.back().vy += F::one();
    Transcript vt2("gkr-test");
    EXPECT_FALSE(gkr.verify(bad, inputs, vt2));
}

TYPED_TEST(GkrT, ProofSizeLogarithmicInWidth)
{
    // GKR's selling point: proof size ~ depth * log(width), far below
    // the witness size.
    using F = TypeParam;
    Rng rng(7);
    auto narrow = randomLayeredCircuit<F>(4, 3, 16, rng);
    auto wide = randomLayeredCircuit<F>(8, 3, 256, rng);
    std::vector<F> in_n(16), in_w(256);
    for (auto &x : in_n)
        x = F::random(rng);
    for (auto &x : in_w)
        x = F::random(rng);
    Transcript t1("gkr-test"), t2("gkr-test");
    auto p_n = Gkr<F>(narrow).prove(in_n, t1);
    auto p_w = Gkr<F>(wide).prove(in_w, t2);
    // 16x wider, but the sum-check transcript grows only by the log
    // factor (rounds per layer = 2 * log(width)).
    auto rounds_bytes = [](const GkrProof<F> &p) {
        size_t bytes = 0;
        for (const auto &layer : p.layers)
            for (const auto &g : layer.rounds)
                bytes += g.size() * F::kNumBytes;
        return bytes;
    };
    EXPECT_LT(rounds_bytes(p_w), rounds_bytes(p_n) * 3);
}

class GpuGkrTest : public ::testing::Test
{
  protected:
    gpusim::Device dev_{gpusim::DeviceSpec::gh200()};
    Rng rng_{77};
};

TEST_F(GpuGkrTest, FunctionalProofsVerify)
{
    auto c = randomLayeredCircuit<Fr>(4, 3, 12, rng_);
    GpuGkrOptions opt;
    opt.functional = 2;
    // A deterministic rng lets verification regenerate the same inputs.
    Rng prove_rng(6);
    std::vector<GkrProof<Fr>> out;
    PipelinedGkrGpu(dev_, opt).run(c, 4, prove_rng, &out);
    ASSERT_EQ(out.size(), 2u);
    Gkr<Fr> gkr(c);
    Rng check_rng(6);
    for (const auto &proof : out) {
        std::vector<Fr> inputs(size_t{1} << c.layerVars(0));
        for (auto &x : inputs)
            x = Fr::random(check_rng);
        Transcript vt("batchzk.gkr.batch");
        EXPECT_TRUE(gkr.verify(proof, inputs, vt));
    }
}

TEST_F(GpuGkrTest, PipelinedThroughputWins)
{
    auto c = randomLayeredCircuit<Fr>(10, 8, 1 << 10, rng_);
    GpuGkrOptions opt;
    opt.functional = 0;
    Rng r1(1), r2(1);
    auto pipe = PipelinedGkrGpu(dev_, opt).run(c, 128, r1);
    auto base = IntuitiveGkrGpu(dev_, opt).run(c, 32, r2);
    EXPECT_GT(pipe.throughput_per_ms, base.throughput_per_ms);
}

TEST_F(GpuGkrTest, PipelinedUtilizationHigher)
{
    auto c = randomLayeredCircuit<Fr>(10, 8, 1 << 10, rng_);
    GpuGkrOptions opt;
    opt.functional = 0;
    Rng r1(2), r2(2);
    auto pipe = PipelinedGkrGpu(dev_, opt).run(c, 128, r1);
    auto base = IntuitiveGkrGpu(dev_, opt).run(c, 32, r2);
    EXPECT_GT(pipe.utilization, base.utilization);
}

TEST_F(GpuGkrTest, DeeperCircuitsBenefitMore)
{
    // More layers = more pipeline stages = bigger win.
    GpuGkrOptions opt;
    opt.functional = 0;
    auto speedup = [&](size_t depth) {
        Rng r(3);
        auto c = randomLayeredCircuit<Fr>(9, depth, 1 << 9, r);
        Rng r1(4), r2(4);
        auto pipe = PipelinedGkrGpu(dev_, opt).run(c, 128, r1);
        auto base = IntuitiveGkrGpu(dev_, opt).run(c, 32, r2);
        return pipe.throughput_per_ms / base.throughput_per_ms;
    };
    EXPECT_GT(speedup(16), speedup(2));
}

TEST(LayeredCircuit, RejectsOutOfRangeWire)
{
    LayeredCircuit<Gl64> c(2);
    EXPECT_DEATH(
        { c.addLayer({{LayeredGate::Kind::Add, 0, 9}}); },
        "out of range");
}

} // namespace
} // namespace bzk
