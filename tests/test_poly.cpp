/**
 * @file
 * Tests for multilinear polynomials, eq tables, and Lagrange
 * interpolation.
 */

#include <gtest/gtest.h>

#include "ff/Fields.h"
#include "poly/Multilinear.h"

namespace bzk {
namespace {

template <typename F>
class MultilinearTest : public ::testing::Test
{
};

using Fields = ::testing::Types<Fr, Gl64>;
TYPED_TEST_SUITE(MultilinearTest, Fields);

TYPED_TEST(MultilinearTest, EvaluateAtHypercubePointsMatchesTable)
{
    using F = TypeParam;
    Rng rng(1);
    auto p = Multilinear<F>::random(4, rng);
    for (size_t b = 0; b < 16; ++b) {
        // Algorithm-1 bit order: variable i (1-based) pairs with
        // bit 2^{n-i}; fixVariable peels the *top* bit first, so the
        // point vector is (top bit, ..., bottom bit) of b.
        std::vector<F> point(4);
        for (unsigned i = 0; i < 4; ++i)
            point[i] = ((b >> (3 - i)) & 1) ? F::one() : F::zero();
        EXPECT_EQ(p.evaluate(point), p.evals()[b]) << "point " << b;
    }
}

TYPED_TEST(MultilinearTest, FixVariableConsistentWithEvaluate)
{
    using F = TypeParam;
    Rng rng(2);
    auto p = Multilinear<F>::random(5, rng);
    F r = F::random(rng);
    auto q = p.fixVariable(r);
    std::vector<F> rest{F::random(rng), F::random(rng), F::random(rng),
                        F::random(rng)};
    std::vector<F> full;
    full.push_back(r);
    for (const auto &x : rest)
        full.push_back(x);
    EXPECT_EQ(q.evaluate(rest), p.evaluate(full));
}

TYPED_TEST(MultilinearTest, SumMatchesManualSum)
{
    using F = TypeParam;
    Rng rng(3);
    auto p = Multilinear<F>::random(6, rng);
    F manual = F::zero();
    for (const auto &e : p.evals())
        manual += e;
    EXPECT_EQ(p.sumOverHypercube(), manual);
}

TYPED_TEST(MultilinearTest, MultilinearInEachVariable)
{
    // p(..., r, ...) must be an affine function of r.
    using F = TypeParam;
    Rng rng(4);
    auto p = Multilinear<F>::random(3, rng);
    std::vector<F> pt{F::random(rng), F::random(rng), F::random(rng)};
    for (unsigned var = 0; var < 3; ++var) {
        auto at = [&](const F &x) {
            auto q = pt;
            q[var] = x;
            return p.evaluate(q);
        };
        F f0 = at(F::zero());
        F f1 = at(F::one());
        F f2 = at(F::fromUint(2));
        // Affine: f2 = 2*f1 - f0.
        EXPECT_EQ(f2, f1.dbl() - f0) << "var " << var;
    }
}

TYPED_TEST(MultilinearTest, EqTableSumsToOne)
{
    using F = TypeParam;
    Rng rng(5);
    std::vector<F> r{F::random(rng), F::random(rng), F::random(rng)};
    auto table = eqTable(r);
    ASSERT_EQ(table.size(), 8u);
    F sum = F::zero();
    for (const auto &e : table)
        sum += e;
    EXPECT_EQ(sum, F::one());
}

TYPED_TEST(MultilinearTest, EqTableSelectsPoint)
{
    // When r is itself Boolean, eq(r, .) is an indicator.
    using F = TypeParam;
    std::vector<F> r{F::one(), F::zero(), F::one()}; // b = 101 (top-first)
    auto table = eqTable(r);
    for (size_t b = 0; b < 8; ++b) {
        bool is_target = b == 0b101;
        EXPECT_EQ(table[b], is_target ? F::one() : F::zero()) << b;
    }
}

TYPED_TEST(MultilinearTest, EqTableMatchesMultilinearEvaluate)
{
    using F = TypeParam;
    Rng rng(6);
    auto p = Multilinear<F>::random(4, rng);
    std::vector<F> r{F::random(rng), F::random(rng), F::random(rng),
                     F::random(rng)};
    auto eq = eqTable(r);
    F via_eq = F::zero();
    for (size_t b = 0; b < eq.size(); ++b)
        via_eq += eq[b] * p.evals()[b];
    EXPECT_EQ(via_eq, p.evaluate(r));
}

TYPED_TEST(MultilinearTest, LagrangeRecoversPolynomial)
{
    using F = TypeParam;
    Rng rng(7);
    // Interpolate a random cubic and re-evaluate.
    std::vector<F> coeffs{F::random(rng), F::random(rng), F::random(rng),
                          F::random(rng)};
    auto eval_poly = [&](const F &x) {
        F acc = F::zero();
        F xp = F::one();
        for (const auto &c : coeffs) {
            acc += c * xp;
            xp *= x;
        }
        return acc;
    };
    std::vector<F> xs, ys;
    for (uint64_t i = 0; i < 4; ++i) {
        xs.push_back(F::fromUint(i));
        ys.push_back(eval_poly(F::fromUint(i)));
    }
    F x = F::random(rng);
    EXPECT_EQ(lagrangeEval(xs, ys, x), eval_poly(x));
}

TYPED_TEST(MultilinearTest, LagrangePassesThroughPoints)
{
    using F = TypeParam;
    Rng rng(8);
    std::vector<F> xs, ys;
    for (uint64_t i = 0; i < 5; ++i) {
        xs.push_back(F::fromUint(i * 3 + 1));
        ys.push_back(F::random(rng));
    }
    for (size_t i = 0; i < xs.size(); ++i)
        EXPECT_EQ(lagrangeEval(xs, ys, xs[i]), ys[i]);
}

} // namespace
} // namespace bzk
