/**
 * @file
 * Tests for the ablation knobs: each paper design choice must measurably
 * beat its ablated alternative in the model, in the direction the paper
 * claims.
 */

#include <gtest/gtest.h>

#include "core/PipelinedSystem.h"
#include "encoder/GpuEncoder.h"
#include "gpusim/Device.h"
#include "merkle/GpuMerkle.h"

namespace bzk {
namespace {

class AblationTest : public ::testing::Test
{
  protected:
    gpusim::Device dev_{gpusim::DeviceSpec::gh200()};
    Rng rng_{99};
};

TEST_F(AblationTest, HalvingAllocationBeatsEqualSplit)
{
    GpuMerkleOptions opt;
    opt.functional = 0;
    auto halving = PipelinedMerkleGpu(dev_, opt).run(128, 1 << 16, rng_);
    opt.equal_lane_split = true;
    auto equal = PipelinedMerkleGpu(dev_, opt).run(128, 1 << 16, rng_);
    // Equal splits starve the leaf layer: the cycle stretches by about
    // layers/2 (leaf work N on M/layers lanes vs N on M/2 lanes).
    EXPECT_GT(halving.throughput_per_ms, equal.throughput_per_ms * 3.0);
}

TEST_F(AblationTest, BucketSortBeatsNaturalOrder)
{
    GpuEncoderOptions opt;
    opt.functional = 0;
    auto sorted = PipelinedEncoderGpu(dev_, opt).run(128, 1 << 16, rng_);
    opt.sort_rows = false;
    auto unsorted =
        PipelinedEncoderGpu(dev_, opt).run(128, 1 << 16, rng_);
    EXPECT_GT(sorted.throughput_per_ms,
              unsorted.throughput_per_ms * 1.2);
}

TEST_F(AblationTest, OverlapBeatsSerializedTransfers)
{
    SystemOptions opt;
    opt.functional = 0;
    Rng r1(1), r2(1);
    auto overlap = PipelinedZkpSystem(dev_, opt).run(128, 20, r1);
    opt.overlap_transfers = false;
    auto serial = PipelinedZkpSystem(dev_, opt).run(128, 20, r2);
    EXPECT_GT(overlap.stats.throughput_per_ms,
              serial.stats.throughput_per_ms * 1.2);
}

TEST_F(AblationTest, SerializedNeverBeatsSumOfParts)
{
    // Sanity on the ablation itself: serialized cycle time ~
    // comm + comp, overlapped ~ max(comm, comp).
    SystemOptions opt;
    opt.functional = 0;
    opt.overlap_transfers = false;
    Rng rng(2);
    auto serial = PipelinedZkpSystem(dev_, opt).run(256, 20, rng);
    double cycle = serial.stats.total_ms / 256.0;
    EXPECT_GT(cycle, serial.comm_ms_per_cycle * 0.9);
    EXPECT_GT(cycle,
              serial.comp_ms_per_cycle * 0.9);
}

TEST_F(AblationTest, DynamicLoadingMemoryConstantPreloadLinear)
{
    SystemOptions opt;
    opt.functional = 0;
    Rng rng(3);
    auto dyn16 = PipelinedZkpSystem(dev_, opt).run(16, 18, rng);
    auto dyn64 = PipelinedZkpSystem(dev_, opt).run(64, 18, rng);
    EXPECT_EQ(dyn16.stats.peak_device_bytes,
              dyn64.stats.peak_device_bytes);

    opt.dynamic_loading = false;
    auto pre16 = PipelinedZkpSystem(dev_, opt).run(16, 18, rng);
    auto pre64 = PipelinedZkpSystem(dev_, opt).run(64, 18, rng);
    EXPECT_GT(pre64.stats.peak_device_bytes,
              pre16.stats.peak_device_bytes * 3);
    EXPECT_GT(pre16.stats.peak_device_bytes,
              dyn16.stats.peak_device_bytes);
}

} // namespace
} // namespace bzk
