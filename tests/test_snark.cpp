/**
 * @file
 * End-to-end tests of the BatchZK SNARK: prove/verify round trips on
 * real circuits, rejection of tampered proofs and unsatisfied tables.
 */

#include <gtest/gtest.h>

#include "circuit/Circuit.h"
#include "core/Snark.h"
#include "ff/Fields.h"

namespace bzk {
namespace {

template <typename F>
class SnarkT : public ::testing::Test
{
};

using Fields = ::testing::Types<Fr, Gl64>;
TYPED_TEST_SUITE(SnarkT, Fields);

template <typename F>
ConstraintTables<F>
satisfiedTables(unsigned n_vars, Rng &rng, Circuit<F> *circuit_out = nullptr)
{
    // A random circuit sized to fill 2^n_vars rows.
    size_t target = (size_t{1} << n_vars) - (size_t{1} << (n_vars - 2));
    auto c = randomCircuit<F>(target, 8, rng);
    std::vector<F> witness(c.numWitnesses());
    for (auto &w : witness)
        w = F::random(rng);
    auto asg = c.evaluate({}, witness);
    auto t = c.buildTables(asg);
    EXPECT_EQ(t.n_vars, n_vars);
    if (circuit_out)
        *circuit_out = c;
    return t;
}

TYPED_TEST(SnarkT, ProveVerifyRoundTrip)
{
    using F = TypeParam;
    Rng rng(1);
    for (unsigned n : {6u, 8u, 10u}) {
        auto tables = satisfiedTables<F>(n, rng);
        Snark<F> snark(n, /*seed=*/99);
        auto proof = snark.prove(tables, {});
        EXPECT_TRUE(snark.verify(proof, {})) << "n=" << n;
    }
}

TYPED_TEST(SnarkT, ProofSizeIsNontrivial)
{
    // The paper notes proofs of this protocol family reach MBs; at toy
    // sizes we just check the accounting is sane and grows.
    using F = TypeParam;
    Rng rng(2);
    auto t8 = satisfiedTables<F>(8, rng);
    auto t10 = satisfiedTables<F>(10, rng);
    Snark<F> s8(8, 99), s10(10, 99);
    auto p8 = s8.prove(t8, {});
    auto p10 = s10.prove(t10, {});
    EXPECT_GT(p8.sizeBytes(), 1000u);
    EXPECT_GT(p10.sizeBytes(), p8.sizeBytes());
}

TYPED_TEST(SnarkT, RejectsUnsatisfiedTables)
{
    using F = TypeParam;
    Rng rng(3);
    auto tables = satisfiedTables<F>(8, rng);
    tables.c[5] += F::one(); // break one constraint
    Snark<F> snark(8, 99);
    auto proof = snark.prove(tables, {});
    EXPECT_FALSE(snark.verify(proof, {}));
}

TYPED_TEST(SnarkT, RejectsTamperedOpeningValue)
{
    using F = TypeParam;
    Rng rng(4);
    auto tables = satisfiedTables<F>(8, rng);
    Snark<F> snark(8, 99);
    auto proof = snark.prove(tables, {});
    proof.va += F::one();
    EXPECT_FALSE(snark.verify(proof, {}));
}

TYPED_TEST(SnarkT, RejectsTamperedSumcheckRound)
{
    using F = TypeParam;
    Rng rng(5);
    auto tables = satisfiedTables<F>(8, rng);
    Snark<F> snark(8, 99);
    auto proof = snark.prove(tables, {});
    proof.constraint_sc.rounds[2][1] += F::one();
    EXPECT_FALSE(snark.verify(proof, {}));
}

TYPED_TEST(SnarkT, RejectsTamperedCommitment)
{
    using F = TypeParam;
    Rng rng(6);
    auto tables = satisfiedTables<F>(8, rng);
    Snark<F> snark(8, 99);
    auto proof = snark.prove(tables, {});
    proof.commit_b.root.bytes[7] ^= 0x80;
    EXPECT_FALSE(snark.verify(proof, {}));
}

TYPED_TEST(SnarkT, RejectsSwappedOpenings)
{
    using F = TypeParam;
    Rng rng(7);
    auto tables = satisfiedTables<F>(8, rng);
    Snark<F> snark(8, 99);
    auto proof = snark.prove(tables, {});
    std::swap(proof.open_a, proof.open_b);
    std::swap(proof.va, proof.vb);
    EXPECT_FALSE(snark.verify(proof, {}));
}

TYPED_TEST(SnarkT, PublicInputsBindProof)
{
    using F = TypeParam;
    Rng rng(8);
    auto tables = satisfiedTables<F>(8, rng);
    Snark<F> snark(8, 99);
    std::vector<F> pub{F::fromUint(123)};
    auto proof = snark.prove(tables, pub);
    EXPECT_TRUE(snark.verify(proof, pub));
    std::vector<F> other{F::fromUint(124)};
    EXPECT_FALSE(snark.verify(proof, other));
}

TYPED_TEST(SnarkT, DifferentSeedsIncompatible)
{
    // The encoder seed is a public parameter; a proof under one seed
    // must not verify under another (different code, different columns).
    using F = TypeParam;
    Rng rng(9);
    auto tables = satisfiedTables<F>(8, rng);
    Snark<F> prover_side(8, 99);
    Snark<F> verifier_side(8, 100);
    auto proof = prover_side.prove(tables, {});
    EXPECT_FALSE(verifier_side.verify(proof, {}));
}

TYPED_TEST(SnarkT, AllZeroTablesProveAndVerify)
{
    // Padding-only tables (0 * 0 = 0 everywhere) are valid.
    using F = TypeParam;
    ConstraintTables<F> tables;
    tables.n_vars = 6;
    tables.a.assign(64, F::zero());
    tables.b.assign(64, F::zero());
    tables.c.assign(64, F::zero());
    Snark<F> snark(6, 99);
    auto proof = snark.prove(tables, {});
    EXPECT_TRUE(snark.verify(proof, {}));
}

} // namespace
} // namespace bzk
