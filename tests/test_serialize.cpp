/**
 * @file
 * Wire-format tests: byte round trips for both proof types, and
 * parameterized corruption/truncation sweeps — a corrupted proof must
 * never deserialize-and-verify.
 */

#include <gtest/gtest.h>

#include "circuit/Circuit.h"
#include "core/FullSnark.h"
#include "core/HighDegreeSnark.h"
#include "core/Serialize.h"
#include "core/Snark.h"
#include "ff/Fields.h"
#include "gkr/LayeredCircuit.h"
#include "journal/Record.h"

namespace bzk {
namespace {

struct Fixture
{
    Snark<Fr> snark{8, 99};
    SnarkProof<Fr> proof;
    FullSnark<Fr> *full = nullptr;
    FullSnarkProof<Fr> full_proof;
    std::vector<Fr> inputs;

    Fixture()
    {
        Rng rng(1);
        // Table-commitment proof.
        auto c = randomCircuit<Fr>(200, 8, rng);
        std::vector<Fr> witness(c.numWitnesses());
        for (auto &w : witness)
            w = Fr::random(rng);
        auto asg = c.evaluate({}, witness);
        proof = snark.prove(c.buildTables(asg), {});

        // Wiring-sound proof.
        Circuit<Fr> fc;
        std::vector<WireId> pool{fc.addInput(), fc.addWitness(),
                                 fc.addWitness()};
        while (fc.numGates() < 150) {
            WireId l = pool[rng.nextBounded(pool.size())];
            WireId r = pool[rng.nextBounded(pool.size())];
            pool.push_back((rng.next() & 1) ? fc.mul(l, r)
                                            : fc.add(l, r));
        }
        inputs = {Fr::fromUint(5)};
        std::vector<Fr> fw(fc.numWitnesses());
        for (auto &w : fw)
            w = Fr::random(rng);
        auto fasg = fc.evaluate(inputs, fw);
        full = new FullSnark<Fr>(buildR1cs(fc), 77);
        full_proof = full->prove(inputs, fasg);
    }

    ~Fixture() { delete full; }
};

Fixture &
fixture()
{
    static Fixture f;
    return f;
}

TEST(Serialize, SnarkProofRoundTrip)
{
    auto &f = fixture();
    auto bytes = serializeProof(f.proof);
    EXPECT_GT(bytes.size(), 1000u);
    auto back = deserializeProof<Fr>(bytes);
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(f.snark.verify(*back, {}));
    // Re-serialization is byte-identical (canonical encoding).
    EXPECT_EQ(serializeProof(*back), bytes);
}

TEST(Serialize, FullProofRoundTrip)
{
    auto &f = fixture();
    auto bytes = serializeFullProof(f.full_proof);
    auto back = deserializeFullProof<Fr>(bytes);
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(f.full->verify(*back, f.inputs));
    EXPECT_EQ(serializeFullProof(*back), bytes);
}

TEST(Serialize, WrongTagRejected)
{
    auto &f = fixture();
    auto bytes = serializeProof(f.proof);
    bytes[0] = 0x7f;
    EXPECT_FALSE(deserializeProof<Fr>(bytes).has_value());
    // A Snark proof is not a FullSnark proof.
    auto bytes2 = serializeProof(f.proof);
    EXPECT_FALSE(deserializeFullProof<Fr>(bytes2).has_value());
}

TEST(Serialize, HighDegreeProofRoundTrip)
{
    Rng rng(3);
    auto tables = highDegreeInstance<Fr>(6, rng);
    HighDegreeSnark<Fr> snark(6, 99);
    auto proof = snark.prove(tables, {});
    auto bytes = serializeHighDegreeProof(proof);
    EXPECT_EQ(bytes[0], 0x04); // its own tag, distinct from Snark's
    auto back = deserializeHighDegreeProof<Fr>(bytes);
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(snark.verify(*back, {}));
    // Canonical: re-serialization is byte-identical.
    EXPECT_EQ(serializeHighDegreeProof(*back), bytes);
    // The tag keeps the codecs from crossing: a high-degree blob is
    // not a table-commit proof and vice versa.
    EXPECT_FALSE(deserializeProof<Fr>(bytes).has_value());
    auto &f = fixture();
    EXPECT_FALSE(
        deserializeHighDegreeProof<Fr>(serializeProof(f.proof))
            .has_value());
}

TEST(Serialize, TrailingGarbageRejected)
{
    auto &f = fixture();
    auto bytes = serializeProof(f.proof);
    bytes.push_back(0);
    EXPECT_FALSE(deserializeProof<Fr>(bytes).has_value());
}

TEST(Serialize, EmptyInputRejected)
{
    EXPECT_FALSE(
        deserializeProof<Fr>(std::span<const uint8_t>{}).has_value());
    EXPECT_FALSE(
        deserializeFullProof<Fr>(std::span<const uint8_t>{}).has_value());
}

TEST(Serialize, HostileLengthPrefixRejected)
{
    auto &f = fixture();
    auto bytes = serializeProof(f.proof);
    // The first u32 length prefix sits after tag + 3*(32+1) bytes; blow
    // it up to a hostile value.
    size_t off = 1 + 3 * 33;
    bytes[off] = 0xff;
    bytes[off + 1] = 0xff;
    bytes[off + 2] = 0xff;
    bytes[off + 3] = 0x7f;
    EXPECT_FALSE(deserializeProof<Fr>(bytes).has_value());
}

TEST(Serialize, GkrProofRoundTrip)
{
    Rng rng(2);
    auto c = randomLayeredCircuit<Fr>(4, 3, 12, rng);
    std::vector<Fr> inputs(16);
    for (auto &x : inputs)
        x = Fr::random(rng);
    Gkr<Fr> gkr(c);
    Transcript pt("ser-gkr");
    auto proof = gkr.prove(inputs, pt);

    auto bytes = serializeGkrProof(proof);
    auto back = deserializeGkrProof<Fr>(bytes);
    ASSERT_TRUE(back.has_value());
    Transcript vt("ser-gkr");
    EXPECT_TRUE(gkr.verify(*back, inputs, vt));
    EXPECT_EQ(serializeGkrProof(*back), bytes);
    // Cross-type confusion rejected.
    EXPECT_FALSE(deserializeProof<Fr>(bytes).has_value());
}

TEST(Serialize, GkrProofCorruptionRejected)
{
    Rng rng(3);
    auto c = randomLayeredCircuit<Fr>(3, 2, 8, rng);
    std::vector<Fr> inputs(8);
    for (auto &x : inputs)
        x = Fr::random(rng);
    Gkr<Fr> gkr(c);
    Transcript pt("ser-gkr");
    auto proof = gkr.prove(inputs, pt);
    auto bytes = serializeGkrProof(proof);
    for (size_t pos : {size_t{8}, bytes.size() / 2, bytes.size() - 3}) {
        auto bad = bytes;
        bad[pos] ^= 0x40;
        auto back = deserializeGkrProof<Fr>(bad);
        if (back.has_value()) {
            Transcript vt("ser-gkr");
            EXPECT_FALSE(gkr.verify(*back, inputs, vt)) << pos;
        }
    }
}

/** Corruption sweep: flip one byte at a parameterized blob position. */
class CorruptionSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(CorruptionSweep, CorruptedSnarkProofNeverAccepted)
{
    auto &f = fixture();
    auto bytes = serializeProof(f.proof);
    size_t pos = static_cast<size_t>(GetParam()) * (bytes.size() - 1) / 15;
    if (pos == 0)
        pos = 1; // keep the tag; tag corruption is covered elsewhere
    bytes[pos] ^= 0x55;
    auto back = deserializeProof<Fr>(bytes);
    if (back.has_value()) {
        // Structure survived: the cryptographic checks must not.
        EXPECT_FALSE(f.snark.verify(*back, {})) << "pos " << pos;
    }
}

TEST_P(CorruptionSweep, CorruptedFullProofNeverAccepted)
{
    auto &f = fixture();
    auto bytes = serializeFullProof(f.full_proof);
    size_t pos = static_cast<size_t>(GetParam()) * (bytes.size() - 1) / 15;
    if (pos == 0)
        pos = 1;
    bytes[pos] ^= 0xa3;
    auto back = deserializeFullProof<Fr>(bytes);
    if (back.has_value()) {
        EXPECT_FALSE(f.full->verify(*back, f.inputs)) << "pos " << pos;
    }
}

INSTANTIATE_TEST_SUITE_P(BytePositions, CorruptionSweep,
                         ::testing::Range(0, 16));

/** Truncation sweep: any prefix of a proof must fail to decode. */
class TruncationSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(TruncationSweep, TruncatedProofRejected)
{
    auto &f = fixture();
    auto bytes = serializeProof(f.proof);
    size_t keep = static_cast<size_t>(GetParam()) * bytes.size() / 8;
    bytes.resize(keep);
    EXPECT_FALSE(deserializeProof<Fr>(bytes).has_value())
        << "kept " << keep;
}

TEST_P(TruncationSweep, TruncatedFullProofRejected)
{
    auto &f = fixture();
    auto bytes = serializeFullProof(f.full_proof);
    size_t keep = static_cast<size_t>(GetParam()) * bytes.size() / 8;
    bytes.resize(keep);
    EXPECT_FALSE(deserializeFullProof<Fr>(bytes).has_value())
        << "kept " << keep;
}

TEST_P(TruncationSweep, TruncatedGkrProofRejected)
{
    Rng rng(4);
    auto c = randomLayeredCircuit<Fr>(3, 2, 8, rng);
    std::vector<Fr> inputs(8);
    for (auto &x : inputs)
        x = Fr::random(rng);
    Gkr<Fr> gkr(c);
    Transcript pt("ser-gkr");
    auto bytes = serializeGkrProof(gkr.prove(inputs, pt));
    size_t keep = static_cast<size_t>(GetParam()) * bytes.size() / 8;
    bytes.resize(keep);
    EXPECT_FALSE(deserializeGkrProof<Fr>(bytes).has_value())
        << "kept " << keep;
}

INSTANTIATE_TEST_SUITE_P(PrefixLengths, TruncationSweep,
                         ::testing::Range(0, 8));

/**
 * Dense byte-flip sweep: each seed flips a random byte at a random
 * position (and with a random mask), covering positions the 16-step
 * sweep above strides over. The decoded proof must never verify.
 */
class DenseFlipSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(DenseFlipSweep, FlippedByteNeverAccepted)
{
    auto &f = fixture();
    Rng rng(GetParam());
    auto bytes = serializeProof(f.proof);
    size_t pos = 1 + rng.nextBounded(bytes.size() - 1);
    uint8_t mask = static_cast<uint8_t>(1 + rng.nextBounded(255));
    bytes[pos] ^= mask;
    auto back = deserializeProof<Fr>(bytes);
    if (back.has_value()) {
        EXPECT_FALSE(f.snark.verify(*back, {}))
            << "pos " << pos << " mask " << unsigned(mask);
    }

    auto full_bytes = serializeFullProof(f.full_proof);
    size_t fpos = 1 + rng.nextBounded(full_bytes.size() - 1);
    full_bytes[fpos] ^= mask;
    auto fback = deserializeFullProof<Fr>(full_bytes);
    if (fback.has_value()) {
        EXPECT_FALSE(f.full->verify(*fback, f.inputs))
            << "pos " << fpos << " mask " << unsigned(mask);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DenseFlipSweep,
                         ::testing::Range<uint64_t>(500, 540));

/** Random-blob fuzz: arbitrary bytes must never crash or be accepted. */
class RandomBlobFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RandomBlobFuzz, NeverAccepted)
{
    Rng rng(GetParam());
    size_t len = 1 + rng.nextBounded(4096);
    std::vector<uint8_t> blob(len);
    for (auto &b : blob)
        b = static_cast<uint8_t>(rng.next());
    // Force a plausible tag half the time so parsing goes deeper.
    if (rng.next() & 1)
        blob[0] = static_cast<uint8_t>(1 + rng.nextBounded(2));
    auto &f = fixture();
    auto p1 = deserializeProof<Fr>(blob);
    if (p1.has_value()) {
        EXPECT_FALSE(f.snark.verify(*p1, {}));
    }
    auto p2 = deserializeFullProof<Fr>(blob);
    if (p2.has_value()) {
        EXPECT_FALSE(f.full->verify(*p2, f.inputs));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomBlobFuzz,
                         ::testing::Range<uint64_t>(100, 130));

// --- journal record wire formats ------------------------------------

TEST(JournalRecords, SegmentHeaderRoundTrip)
{
    journal::SegmentHeader header{0x0123456789ABCDEFull};
    auto bytes = journal::encodeSegmentHeader(header);
    ASSERT_EQ(bytes.size(), journal::kSegmentHeaderBytes);
    auto decoded = journal::decodeSegmentHeader(bytes);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, header);
}

TEST(JournalRecords, SegmentHeaderRejectsBadMagicVersionCrc)
{
    auto bytes = journal::encodeSegmentHeader({42});
    auto corrupt = bytes;
    corrupt[0] ^= 0xFF; // magic
    EXPECT_FALSE(journal::decodeSegmentHeader(corrupt).has_value());
    corrupt = bytes;
    corrupt[4] = journal::kJournalVersion + 1; // version
    EXPECT_FALSE(journal::decodeSegmentHeader(corrupt).has_value());
    corrupt = bytes;
    corrupt[8] ^= 0x01; // index byte, breaks the CRC
    EXPECT_FALSE(journal::decodeSegmentHeader(corrupt).has_value());
    // Short reads never decode.
    EXPECT_FALSE(journal::decodeSegmentHeader(
                     std::span<const uint8_t>(bytes.data(),
                                              bytes.size() - 1))
                     .has_value());
}

TEST(JournalRecords, TaskRecordRoundTrip)
{
    journal::TaskRecord task;
    task.task_id = 0xFEDCBA9876543210ull;
    task.n_vars = 18;
    task.priority = -5; // negative priorities must survive the trip
    task.seed = 2024;
    auto body = journal::encodeTaskRecord(task);
    EXPECT_EQ(journal::recordType(body), journal::RecordType::Task);
    auto decoded = journal::decodeTaskRecord(body);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, task);
}

TEST(JournalRecords, CompletionRecordRoundTrip)
{
    journal::CompletionRecord completion;
    completion.task_id = 7;
    completion.n_vars = 10;
    completion.seed = 99;
    completion.proof.resize(4097);
    Rng rng(3);
    for (auto &b : completion.proof)
        b = static_cast<uint8_t>(rng.next());
    auto body = journal::encodeCompletionRecord(completion);
    EXPECT_EQ(journal::recordType(body),
              journal::RecordType::Completion);
    auto decoded = journal::decodeCompletionRecord(body);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, completion);

    // Empty proofs (ack-only completions) round-trip too.
    completion.proof.clear();
    decoded = journal::decodeCompletionRecord(
        journal::encodeCompletionRecord(completion));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, completion);
}

TEST(JournalRecords, DecodersRejectBadVersionAndType)
{
    auto task_body = journal::encodeTaskRecord({1, 10, 0, 2});
    auto completion_body =
        journal::encodeCompletionRecord({1, 10, 2, {0xAB}});

    // A future format version must not decode as the current one.
    auto bumped = task_body;
    bumped[1] = journal::kTaskRecordVersion + 1;
    EXPECT_FALSE(journal::decodeTaskRecord(bumped).has_value());
    journal::TaskRecord out;
    EXPECT_EQ(journal::decodeTaskRecordChecked(bumped, &out),
              journal::RecordDecodeError::BadVersion);
    bumped = completion_body;
    bumped[1] = journal::kJournalVersion + 1;
    EXPECT_FALSE(journal::decodeCompletionRecord(bumped).has_value());

    // Cross-typed decodes fail: a task body is not a completion.
    EXPECT_FALSE(journal::decodeCompletionRecord(task_body).has_value());
    EXPECT_FALSE(journal::decodeTaskRecord(completion_body).has_value());
    EXPECT_EQ(journal::decodeTaskRecordChecked(completion_body, &out),
              journal::RecordDecodeError::BadType);
    EXPECT_FALSE(
        journal::recordType(std::vector<uint8_t>{0x7F}).has_value());
    EXPECT_FALSE(
        journal::recordType(std::span<const uint8_t>{}).has_value());
}

TEST(JournalRecords, TaskRecordCarriesProtocolKind)
{
    journal::TaskRecord task;
    task.task_id = 31;
    task.n_vars = 9;
    task.priority = 1;
    task.seed = 77;
    task.kind = sched::ProtocolKind::HighDegreeGate;
    auto body = journal::encodeTaskRecord(task);
    EXPECT_EQ(body[1], journal::kTaskRecordVersion);
    auto decoded = journal::decodeTaskRecord(body);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->kind, sched::ProtocolKind::HighDegreeGate);
    EXPECT_EQ(*decoded, task);
}

TEST(JournalRecords, V1TaskRecordDecodesAsLegacyKind)
{
    // A version-1 body as written before protocol kinds existed:
    // type, version=1, task_id, n_vars, priority, seed — no kind byte.
    ByteWriter w;
    w.u8(static_cast<uint8_t>(journal::RecordType::Task));
    w.u8(1);
    w.u64(42);
    w.u32(11);
    w.u32(static_cast<uint32_t>(-3));
    w.u64(2024);
    auto v1_body = w.take();
    ASSERT_EQ(v1_body.size(), 26u);

    auto decoded = journal::decodeTaskRecord(v1_body);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->task_id, 42u);
    EXPECT_EQ(decoded->n_vars, 11u);
    EXPECT_EQ(decoded->priority, -3);
    EXPECT_EQ(decoded->seed, 2024u);
    EXPECT_EQ(decoded->kind, sched::ProtocolKind::TableCommit);

    // A v1 body with a stray trailing byte is not silently v2.
    auto padded = v1_body;
    padded.push_back(0);
    journal::TaskRecord out;
    EXPECT_EQ(journal::decodeTaskRecordChecked(padded, &out),
              journal::RecordDecodeError::Malformed);
}

TEST(JournalRecords, UnknownProtocolKindIsTypedError)
{
    auto body = journal::encodeTaskRecord(
        {5, 10, 0, 2, sched::ProtocolKind::HighDegreeGate});
    body.back() = 0xEE; // a kind this build does not know
    EXPECT_FALSE(journal::decodeTaskRecord(body).has_value());
    journal::TaskRecord out;
    out.task_id = 999;
    EXPECT_EQ(journal::decodeTaskRecordChecked(body, &out),
              journal::RecordDecodeError::UnknownKind);
    EXPECT_EQ(out.task_id, 999u); // output untouched on error
    EXPECT_STREQ(journal::recordDecodeErrorName(
                     journal::RecordDecodeError::UnknownKind),
                 "unknown-kind");
}

TEST(JournalRecords, DecodersRejectTruncationAndTrailingBytes)
{
    auto body = journal::encodeTaskRecord({9, 12, 1, 7});
    for (size_t len = 0; len < body.size(); ++len)
        EXPECT_FALSE(journal::decodeTaskRecord(
                         std::span<const uint8_t>(body.data(), len))
                         .has_value())
            << "prefix " << len;
    auto padded = body;
    padded.push_back(0);
    EXPECT_FALSE(journal::decodeTaskRecord(padded).has_value());

    // Completion whose declared proof length overruns the body.
    journal::CompletionRecord completion{3, 10, 5, {1, 2, 3, 4}};
    auto cbody = journal::encodeCompletionRecord(completion);
    cbody.resize(cbody.size() - 2);
    EXPECT_FALSE(journal::decodeCompletionRecord(cbody).has_value());
}

TEST(JournalRecords, FrameCarriesLengthAndCrc)
{
    auto body = journal::encodeTaskRecord({4, 10, 0, 6});
    auto frame = journal::frameRecord(body);
    ASSERT_EQ(frame.size(), journal::kRecordFrameBytes + body.size());
    uint32_t length = 0;
    for (int i = 0; i < 4; ++i)
        length |= static_cast<uint32_t>(frame[i]) << (8 * i);
    EXPECT_EQ(length, body.size());
    EXPECT_TRUE(std::equal(body.begin(), body.end(),
                           frame.begin() + journal::kRecordFrameBytes));
}

} // namespace
} // namespace bzk
