/**
 * @file
 * Death tests for the library's panic paths: misuse of the public API
 * must fail loudly (abort with a message), never silently corrupt.
 */

#include <gtest/gtest.h>

#include "circuit/Circuit.h"
#include "encoder/SpielmanCode.h"
#include "ff/Fields.h"
#include "gpusim/Device.h"
#include "gpusim/FaultInjector.h"
#include "merkle/MerkleTree.h"
#include "poly/Multilinear.h"
#include "sumcheck/Sumcheck.h"

namespace bzk {
namespace {

using DeathTest = ::testing::Test;

TEST(DeathTest, MultilinearRejectsNonPow2)
{
    EXPECT_DEATH(
        { Multilinear<Gl64> m(std::vector<Gl64>(3)); },
        "power of two");
}

TEST(DeathTest, MultilinearRejectsEmpty)
{
    EXPECT_DEATH({ Multilinear<Gl64> m((std::vector<Gl64>())); },
                 "power of two");
}

TEST(DeathTest, EvaluateRejectsWrongArity)
{
    Rng rng(1);
    auto p = Multilinear<Gl64>::random(3, rng);
    std::vector<Gl64> point(2);
    EXPECT_DEATH({ (void)p.evaluate(point); }, "coords");
}

TEST(DeathTest, SumcheckRejectsWrongChallengeCount)
{
    Rng rng(2);
    auto p = Multilinear<Gl64>::random(3, rng);
    std::vector<Gl64> challenges(2);
    EXPECT_DEATH({ (void)proveSumcheck(p, challenges); }, "challenges");
}

TEST(DeathTest, MerklePathOutOfRange)
{
    auto t = MerkleTree::build(std::vector<uint8_t>(64 * 4, 1));
    EXPECT_DEATH({ (void)t.path(4); }, "out of");
}

TEST(DeathTest, CircuitRejectsDanglingWire)
{
    Circuit<Gl64> c;
    WireId a = c.addWitness();
    EXPECT_DEATH({ (void)c.mul(a, 7); }, "does not exist");
}

TEST(DeathTest, CircuitRejectsWrongWitnessCount)
{
    Circuit<Gl64> c;
    c.addWitness();
    std::vector<Gl64> none;
    EXPECT_DEATH({ (void)c.evaluate({}, none); }, "witness");
}

TEST(DeathTest, DeviceRejectsBadStream)
{
    gpusim::DeviceSpec spec = gpusim::DeviceSpec::v100();
    gpusim::Device dev(spec);
    gpusim::KernelDesc k;
    k.name = "bad";
    k.threads = 1;
    k.cycles_per_thread = 1;
    EXPECT_DEATH({ dev.launchKernel(7, k); }, "bad stream");
}

TEST(DeathTest, DeviceRejectsDoubleFree)
{
    gpusim::Device dev(gpusim::DeviceSpec::v100());
    int64_t h = dev.alloc(100);
    dev.free(h);
    EXPECT_DEATH({ dev.free(h); }, "double-freed");
}

TEST(DeathTest, DeviceRejectsBadOpQuery)
{
    gpusim::Device dev(gpusim::DeviceSpec::v100());
    EXPECT_DEATH({ (void)dev.opEnd(3); }, "bad op");
}

TEST(DeathTest, EncoderRejectsTinyMessage)
{
    // Message length below the base size is a configuration error.
    EXPECT_EXIT({ SpielmanCode<Gl64> code(16, 1); },
                ::testing::ExitedWithCode(1), "power of two");
}

TEST(DeathTest, EncoderRejectsWrongMessageLength)
{
    SpielmanCode<Gl64> code(64, 1);
    std::vector<Gl64> msg(63);
    EXPECT_DEATH({ (void)code.encode(msg); }, "message length");
}

// A malformed fault plan is an operator configuration error: the CLI
// must exit cleanly (code 1) with a "fault plan" diagnostic, never
// install a half-parsed schedule.

TEST(DeathTest, FaultPlanRejectsUnknownKind)
{
    EXPECT_EXIT({ (void)gpusim::FaultPlan::parse("bogus:0-5:2"); },
                ::testing::ExitedWithCode(1), "unknown fault kind");
}

TEST(DeathTest, FaultPlanRejectsInvertedWindow)
{
    EXPECT_EXIT({ (void)gpusim::FaultPlan::parse("stall:5-2:3"); },
                ::testing::ExitedWithCode(1), "empty window");
}

TEST(DeathTest, FaultPlanRejectsOutOfRangeMagnitudes)
{
    // A stall that does not slow anything down and a lane fraction
    // outside (0, 1) are both nonsense.
    EXPECT_EXIT({ (void)gpusim::FaultPlan::parse("stall:0-5:0.5"); },
                ::testing::ExitedWithCode(1), "must exceed 1");
    EXPECT_EXIT({ (void)gpusim::FaultPlan::parse("lanes:0-5:1.5"); },
                ::testing::ExitedWithCode(1), "must be in \\(0, 1\\)");
}

TEST(DeathTest, FaultPlanRejectsGarbageNumbers)
{
    EXPECT_EXIT({ (void)gpusim::FaultPlan::parse("corrupt:abc"); },
                ::testing::ExitedWithCode(1), "bad number");
    EXPECT_EXIT({ (void)gpusim::FaultPlan::parse("stall:0-5:fast"); },
                ::testing::ExitedWithCode(1), "bad magnitude");
}

TEST(DeathTest, FaultPlanRejectsEmptySpec)
{
    EXPECT_EXIT({ (void)gpusim::FaultPlan::parse(""); },
                ::testing::ExitedWithCode(1), "fault plan");
}

} // namespace
} // namespace bzk
