/**
 * @file
 * Death tests for the library's panic paths: misuse of the public API
 * must fail loudly (abort with a message), never silently corrupt.
 */

#include <gtest/gtest.h>

#include <vector>

#include "../tools/BatchzkCli.h"
#include "circuit/Circuit.h"
#include "encoder/SpielmanCode.h"
#include "ff/Fields.h"
#include "gpusim/Device.h"
#include "gpusim/FaultInjector.h"
#include "merkle/MerkleTree.h"
#include "net/Wire.h"
#include "poly/Multilinear.h"
#include "sumcheck/Sumcheck.h"

namespace bzk {
namespace {

using DeathTest = ::testing::Test;

TEST(DeathTest, MultilinearRejectsNonPow2)
{
    EXPECT_DEATH(
        { Multilinear<Gl64> m(std::vector<Gl64>(3)); },
        "power of two");
}

TEST(DeathTest, MultilinearRejectsEmpty)
{
    EXPECT_DEATH({ Multilinear<Gl64> m((std::vector<Gl64>())); },
                 "power of two");
}

TEST(DeathTest, EvaluateRejectsWrongArity)
{
    Rng rng(1);
    auto p = Multilinear<Gl64>::random(3, rng);
    std::vector<Gl64> point(2);
    EXPECT_DEATH({ (void)p.evaluate(point); }, "coords");
}

TEST(DeathTest, SumcheckRejectsWrongChallengeCount)
{
    Rng rng(2);
    auto p = Multilinear<Gl64>::random(3, rng);
    std::vector<Gl64> challenges(2);
    EXPECT_DEATH({ (void)proveSumcheck(p, challenges); }, "challenges");
}

TEST(DeathTest, MerklePathOutOfRange)
{
    auto t = MerkleTree::build(std::vector<uint8_t>(64 * 4, 1));
    EXPECT_DEATH({ (void)t.path(4); }, "out of");
}

TEST(DeathTest, CircuitRejectsDanglingWire)
{
    Circuit<Gl64> c;
    WireId a = c.addWitness();
    EXPECT_DEATH({ (void)c.mul(a, 7); }, "does not exist");
}

TEST(DeathTest, CircuitRejectsWrongWitnessCount)
{
    Circuit<Gl64> c;
    c.addWitness();
    std::vector<Gl64> none;
    EXPECT_DEATH({ (void)c.evaluate({}, none); }, "witness");
}

TEST(DeathTest, DeviceRejectsBadStream)
{
    gpusim::DeviceSpec spec = gpusim::DeviceSpec::v100();
    gpusim::Device dev(spec);
    gpusim::KernelDesc k;
    k.name = "bad";
    k.threads = 1;
    k.cycles_per_thread = 1;
    EXPECT_DEATH({ dev.launchKernel(7, k); }, "bad stream");
}

TEST(DeathTest, DeviceRejectsDoubleFree)
{
    gpusim::Device dev(gpusim::DeviceSpec::v100());
    int64_t h = dev.alloc(100);
    dev.free(h);
    EXPECT_DEATH({ dev.free(h); }, "double-freed");
}

TEST(DeathTest, DeviceRejectsBadOpQuery)
{
    gpusim::Device dev(gpusim::DeviceSpec::v100());
    EXPECT_DEATH({ (void)dev.opEnd(3); }, "bad op");
}

TEST(DeathTest, ToBytesRejectsNonCanonicalLimb)
{
    // A raw limb >= p must never serialize: transcripts would fork
    // between encodings of the same field element.
    EXPECT_DEATH(
        {
            uint8_t out[8];
            Gl64::fromRaw(Gl64::kModulus).toBytes(out);
        },
        "non-canonical");
}

TEST(DeathTest, InverseOfZeroAsserts)
{
    // Fermat's little theorem silently maps 0 -> 0; the assert makes
    // the misuse loud in debug builds. Callers that legitimately hold
    // zeros use ff::batchInverse's documented skip-zero semantics.
    EXPECT_DEBUG_DEATH({ (void)Gl64::zero().inverse(); },
                       "inverse of zero");
    EXPECT_DEBUG_DEATH({ (void)Fr::zero().inverse(); },
                       "inverse of zero");
    // Fq sees zero denominators routinely in the MSM batch-affine
    // pass (infinity operands, P + (-P) cancellations); those flow
    // through ff::batchInverse's skip-zero path, and a stray scalar
    // inverse() of zero must still trip the same assert.
    EXPECT_DEBUG_DEATH({ (void)Fq::zero().inverse(); },
                       "inverse of zero");
}

TEST(DeathTest, EncoderRejectsTinyMessage)
{
    // Message length below the base size is a configuration error.
    EXPECT_EXIT({ SpielmanCode<Gl64> code(16, 1); },
                ::testing::ExitedWithCode(1), "power of two");
}

TEST(DeathTest, EncoderRejectsWrongMessageLength)
{
    SpielmanCode<Gl64> code(64, 1);
    std::vector<Gl64> msg(63);
    EXPECT_DEATH({ (void)code.encode(msg); }, "message length");
}

// A malformed fault plan is an operator configuration error: the CLI
// must exit cleanly (code 1) with a "fault plan" diagnostic, never
// install a half-parsed schedule.

TEST(DeathTest, FaultPlanRejectsUnknownKind)
{
    EXPECT_EXIT({ (void)gpusim::FaultPlan::parse("bogus:0-5:2"); },
                ::testing::ExitedWithCode(1), "unknown fault kind");
}

TEST(DeathTest, FaultPlanRejectsInvertedWindow)
{
    EXPECT_EXIT({ (void)gpusim::FaultPlan::parse("stall:5-2:3"); },
                ::testing::ExitedWithCode(1), "empty window");
}

TEST(DeathTest, FaultPlanRejectsOutOfRangeMagnitudes)
{
    // A stall that does not slow anything down and a lane fraction
    // outside (0, 1) are both nonsense.
    EXPECT_EXIT({ (void)gpusim::FaultPlan::parse("stall:0-5:0.5"); },
                ::testing::ExitedWithCode(1), "must exceed 1");
    EXPECT_EXIT({ (void)gpusim::FaultPlan::parse("lanes:0-5:1.5"); },
                ::testing::ExitedWithCode(1), "must be in \\(0, 1\\)");
}

TEST(DeathTest, FaultPlanRejectsGarbageNumbers)
{
    EXPECT_EXIT({ (void)gpusim::FaultPlan::parse("corrupt:abc"); },
                ::testing::ExitedWithCode(1), "bad number");
    EXPECT_EXIT({ (void)gpusim::FaultPlan::parse("stall:0-5:fast"); },
                ::testing::ExitedWithCode(1), "bad magnitude");
}

TEST(DeathTest, FaultPlanRejectsEmptySpec)
{
    EXPECT_EXIT({ (void)gpusim::FaultPlan::parse(""); },
                ::testing::ExitedWithCode(1), "fault plan");
}

TEST(DeathTest, WireV1CannotCarryHighDegreeSubmit)
{
    // A v1 frame has no kind byte: silently encoding a high-degree
    // Submit would make the server prove the wrong protocol. The
    // encoder refuses instead of downgrading.
    net::Submit submit;
    submit.kind = sched::ProtocolKind::HighDegreeGate;
    EXPECT_DEATH(
        { (void)net::encodeFrame(net::Message{submit}, 1); },
        "wire version");
}

// Regression tests for the batchzk shell contract: unknown subcommands
// and flags must be rejected with a diagnostic (the binary then exits
// nonzero with usage), never fall through to a half-configured run.
// The CLI used to silently ignore a trailing flag with no value.

cli::ParseResult
parseArgv(std::vector<const char *> argv, cli::Args &args)
{
    return cli::parse(static_cast<int>(argv.size()),
                      const_cast<char **>(argv.data()), args);
}

TEST(CliParse, RejectsMissingCommand)
{
    cli::Args args;
    auto result = parseArgv({"batchzk"}, args);
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.error, "missing command");
}

TEST(CliParse, RejectsUnknownCommand)
{
    cli::Args args;
    auto result = parseArgv({"batchzk", "bogus"}, args);
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.error, "unknown command 'bogus'");
}

TEST(CliParse, RejectsUnknownFlag)
{
    cli::Args args;
    auto result =
        parseArgv({"batchzk", "prove", "--frobnicate", "1"}, args);
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.error, "unknown flag '--frobnicate'");
}

TEST(CliParse, RejectsTrailingFlagWithoutValue)
{
    // The historical bug: `--seed` at the end of argv was dropped on
    // the floor and the run proceeded with the default seed.
    cli::Args args;
    auto result = parseArgv({"batchzk", "prove", "--seed"}, args);
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.error, "flag '--seed' is missing a value");
}

TEST(CliParse, RejectsNonNumericNumbers)
{
    cli::Args args;
    auto result =
        parseArgv({"batchzk", "prove", "--log-gates", "twelve"}, args);
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.error,
              "flag '--log-gates' needs a non-negative integer, got "
              "'twelve'");
    result = parseArgv({"batchzk", "prove", "--seed", "-3"}, args);
    EXPECT_FALSE(result.ok);
}

TEST(CliParse, RejectsStrayPositionalArgument)
{
    cli::Args args;
    auto result = parseArgv({"batchzk", "prove", "stray"}, args);
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.error, "unexpected argument 'stray'");
}

TEST(CliParse, AcceptsEveryCommandAndFlag)
{
    cli::Args args;
    auto result = parseArgv(
        {"batchzk", "recover", "--journal-dir", "/tmp/j", "--gpu",
         "H100", "--seed", "7", "--threads", "4"},
        args);
    EXPECT_TRUE(result.ok) << result.error;
    EXPECT_EQ(args.command, "recover");
    EXPECT_EQ(args.journal_dir, "/tmp/j");
    EXPECT_EQ(args.gpu, "H100");
    EXPECT_EQ(args.seed, 7u);
    EXPECT_EQ(args.threads, 4u);
}

TEST(CliParse, RejectsUnknownKindAndLanePolicy)
{
    cli::Args args;
    auto result =
        parseArgv({"batchzk", "prove", "--kind", "plonk"}, args);
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.error,
              "flag '--kind' needs table-commit, high-degree-gate, or "
              "mixed, got 'plonk'");
    result = parseArgv({"batchzk", "sched", "--lane-policy", "greedy"},
                       args);
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.error,
              "flag '--lane-policy' needs proportional, fixed-ratio, "
              "or measured-cost, got 'greedy'");
    result = parseArgv({"batchzk", "sched", "--kind", "mixed",
                        "--lane-policy", "measured-cost"},
                       args);
    EXPECT_TRUE(result.ok) << result.error;
    EXPECT_EQ(args.kind, "mixed");
    EXPECT_EQ(args.lane_policy, "measured-cost");
}

TEST(CliParse, TraceAndMetricsTakePositionalOutput)
{
    cli::Args args;
    auto result = parseArgv({"batchzk", "trace", "/tmp/t.json"}, args);
    EXPECT_TRUE(result.ok) << result.error;
    EXPECT_EQ(args.out, "/tmp/t.json");
    // But a second positional is still an error.
    cli::Args more;
    result = parseArgv({"batchzk", "trace", "a.json", "b.json"}, more);
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.error, "unexpected argument 'b.json'");
}

} // namespace
} // namespace bzk
