/**
 * @file
 * Proof-service network layer: wire-codec round trips and the
 * corruption suite (truncation, flipped CRC bytes, oversized length
 * prefixes, unknown versions/types — every one a clean typed error,
 * never a crash or a hang), the epoll server's guard rails
 * (Invalid/Retry/Shed ordering, queue-deadline sheds, version
 * negotiation), proof compatibility with the durable service's
 * instance derivation, and a small load-generator soak with exact
 * task-id accounting.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "core/DurableService.h"
#include "core/HighDegreeSnark.h"
#include "core/PipelinedSystem.h"
#include "core/Serialize.h"
#include "core/Snark.h"
#include "journal/Crc32.h"
#include "net/Client.h"
#include "net/Executor.h"
#include "net/LoadGen.h"
#include "net/RateLimiter.h"
#include "net/Server.h"
#include "net/Socket.h"
#include "net/Wire.h"
#include "obs/Metrics.h"
#include "util/Rng.h"

using namespace bzk;
using namespace bzk::net;

namespace {

/** Encode, then decode through a FrameDecoder fed in one shot. */
std::optional<Message>
roundTripMessage(const Message &msg)
{
    FrameDecoder decoder;
    decoder.feed(encodeFrame(msg));
    auto polled = decoder.poll();
    if (!polled || !std::holds_alternative<Message>(*polled))
        return std::nullopt;
    return std::get<Message>(*polled);
}

WireError
expectError(FrameDecoder &decoder)
{
    auto polled = decoder.poll();
    EXPECT_TRUE(polled.has_value());
    EXPECT_TRUE(std::holds_alternative<WireError>(*polled));
    return std::get<WireError>(*polled);
}

/** Executor that takes long enough for backpressure to be observable. */
class SlowExecutor : public ProofExecutor
{
  public:
    explicit SlowExecutor(int ms) : ms_(ms) {}

    std::vector<uint8_t>
    execute(const Submit &task) override
    {
        std::this_thread::sleep_for(std::chrono::milliseconds(ms_));
        return digest_.execute(task);
    }

  private:
    int ms_;
    DigestExecutor digest_;
};

} // namespace

TEST(NetWire, RoundTripsEveryMessageType)
{
    Hello hello;
    hello.tenant = 42;
    HelloAck ack;
    ack.window = 7;
    Submit submit;
    submit.task_id = 9001;
    submit.n_vars = 12;
    submit.seed = 77;
    Result result;
    result.task_id = 9001;
    result.status = Status::Retry;
    result.retry_after_ms = 250;
    result.proof = {1, 2, 3, 4, 5};
    ProtoError error;
    error.code = ErrorCode::UnexpectedMessage;
    error.detail = "surprise";

    for (const Message &msg :
         {Message{hello}, Message{ack}, Message{submit},
          Message{result}, Message{error}}) {
        auto back = roundTripMessage(msg);
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(msg, *back);
    }
}

TEST(NetWire, SubmitKindIsVersioned)
{
    Submit hdg;
    hdg.task_id = 7;
    hdg.n_vars = 9;
    hdg.seed = 5;
    hdg.kind = sched::ProtocolKind::HighDegreeGate;

    // v2 (the default) round-trips the kind byte.
    auto back = roundTripMessage(Message{hdg});
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(Message{hdg}, *back);

    // A v1 frame has no kind byte: a legacy Submit still round-trips,
    // decodes as the legacy protocol, and is one byte shorter on the
    // wire than its v2 encoding.
    Submit legacy;
    legacy.task_id = 8;
    FrameDecoder decoder;
    decoder.feed(encodeFrame(Message{legacy}, 1));
    auto polled = decoder.poll();
    ASSERT_TRUE(polled.has_value());
    auto got = std::get<Submit>(std::get<Message>(*polled));
    EXPECT_EQ(sched::ProtocolKind::TableCommit, got.kind);
    EXPECT_EQ(legacy, got);
    EXPECT_EQ(encodeFrame(Message{legacy}, 1).size() + 1,
              encodeFrame(Message{legacy}, 2).size());

    // An unknown kind byte in a v2 body is Malformed, not a crash.
    std::vector<uint8_t> body = {2,
                                 static_cast<uint8_t>(MsgType::Submit)};
    body.insert(body.end(), 8, 0); // task_id
    body.insert(body.end(), 4, 0); // n_vars
    body.insert(body.end(), 8, 0); // seed
    body.push_back(9);             // no such protocol kind
    auto decoded = decodeBody(body);
    ASSERT_TRUE(std::holds_alternative<WireError>(decoded));
    EXPECT_EQ(WireError::Malformed, std::get<WireError>(decoded));
}

TEST(NetWire, ReassemblesByteAtATime)
{
    Result result;
    result.task_id = 5;
    result.proof.assign(1000, 0xAB);
    std::vector<uint8_t> frame = encodeFrame(Message{result});

    FrameDecoder decoder;
    for (size_t i = 0; i < frame.size(); ++i) {
        if (i + 1 < frame.size()) {
            EXPECT_FALSE(decoder.poll().has_value());
        }
        decoder.feed(std::span<const uint8_t>(&frame[i], 1));
    }
    auto polled = decoder.poll();
    ASSERT_TRUE(polled.has_value());
    EXPECT_EQ(Message{result}, std::get<Message>(*polled));
    EXPECT_EQ(0u, decoder.buffered());
}

TEST(NetWire, DecodesBackToBackFramesInOrder)
{
    FrameDecoder decoder;
    std::vector<uint8_t> bytes;
    for (uint64_t id = 0; id < 8; ++id) {
        Submit submit;
        submit.task_id = id;
        auto frame = encodeFrame(Message{submit});
        bytes.insert(bytes.end(), frame.begin(), frame.end());
    }
    decoder.feed(bytes);
    for (uint64_t id = 0; id < 8; ++id) {
        auto polled = decoder.poll();
        ASSERT_TRUE(polled.has_value());
        EXPECT_EQ(id,
                  std::get<Submit>(std::get<Message>(*polled)).task_id);
    }
    EXPECT_FALSE(decoder.poll().has_value());
}

TEST(NetWire, TruncatedFrameIsIncompleteNotAnError)
{
    std::vector<uint8_t> frame = encodeFrame(Message{Submit{}});
    for (size_t keep : {size_t{0}, size_t{3}, size_t{11},
                        frame.size() - 1}) {
        FrameDecoder decoder;
        decoder.feed(std::span<const uint8_t>(frame.data(), keep));
        EXPECT_FALSE(decoder.poll().has_value());
        EXPECT_FALSE(decoder.poisoned());
    }
}

TEST(NetWire, FlippedCrcByteIsBadCrc)
{
    std::vector<uint8_t> frame = encodeFrame(Message{Submit{}});
    // Flip one bit in each CRC byte (header bytes 8..11) and in the
    // body; every variant must fail the checksum.
    for (size_t at : {size_t{8}, size_t{9}, size_t{10}, size_t{11},
                      kFrameHeaderBytes + 2}) {
        std::vector<uint8_t> bad = frame;
        bad[at] ^= 0x40;
        FrameDecoder decoder;
        decoder.feed(bad);
        EXPECT_EQ(WireError::BadCrc, expectError(decoder));
        EXPECT_TRUE(decoder.poisoned());
    }
}

TEST(NetWire, BadMagicIsRejected)
{
    std::vector<uint8_t> frame = encodeFrame(Message{Hello{}});
    frame[0] = 'X';
    FrameDecoder decoder;
    decoder.feed(frame);
    EXPECT_EQ(WireError::BadMagic, expectError(decoder));
}

TEST(NetWire, OversizedLengthPrefixRejectedBeforeBuffering)
{
    // A hostile length just past the cap, with no body bytes at all:
    // the decoder must reject from the 12-byte header alone instead of
    // waiting for (or allocating) 4 GiB.
    std::vector<uint8_t> header(kFrameHeaderBytes, 0);
    header[0] = 'B';
    header[1] = 'Z';
    header[2] = 'K';
    header[3] = 'N';
    uint32_t huge = static_cast<uint32_t>(kMaxFrameBytes) + 1;
    for (int i = 0; i < 4; ++i)
        header[4 + i] = static_cast<uint8_t>(huge >> (8 * i));
    FrameDecoder decoder;
    decoder.feed(header);
    EXPECT_EQ(WireError::Oversize, expectError(decoder));
    EXPECT_LE(decoder.buffered(), kFrameHeaderBytes);
}

TEST(NetWire, UnknownVersionIsBadVersion)
{
    std::vector<uint8_t> frame = encodeFrame(Message{Submit{}});
    // Body starts after the header; byte 0 of the body is the version.
    frame[kFrameHeaderBytes] = 99;
    // The CRC covers the body, so recompute it for the tampered body.
    std::span<const uint8_t> body(frame.data() + kFrameHeaderBytes,
                                  frame.size() - kFrameHeaderBytes);
    uint32_t crc = journal::crc32(body);
    for (int i = 0; i < 4; ++i)
        frame[8 + i] = static_cast<uint8_t>(crc >> (8 * i));
    FrameDecoder decoder;
    decoder.feed(frame);
    EXPECT_EQ(WireError::BadVersion, expectError(decoder));
}

TEST(NetWire, UnknownTypeAndMalformedPayloadAreTyped)
{
    // decodeBody is the layer under the frame check, so hostile bodies
    // can be probed directly.
    std::vector<uint8_t> unknown_type = {kWireVersion, 200};
    auto decoded = decodeBody(unknown_type);
    ASSERT_TRUE(std::holds_alternative<WireError>(decoded));
    EXPECT_EQ(WireError::BadType, std::get<WireError>(decoded));

    // A Submit payload cut short.
    std::vector<uint8_t> truncated = {
        kWireVersion, static_cast<uint8_t>(MsgType::Submit), 1, 2, 3};
    decoded = decodeBody(truncated);
    ASSERT_TRUE(std::holds_alternative<WireError>(decoded));
    EXPECT_EQ(WireError::Malformed, std::get<WireError>(decoded));

    // A Submit payload with trailing bytes is over-long, not ignored.
    std::vector<uint8_t> frame = encodeFrame(Message{Submit{}});
    std::vector<uint8_t> overlong(frame.begin() + kFrameHeaderBytes,
                                  frame.end());
    overlong.push_back(0);
    decoded = decodeBody(overlong);
    ASSERT_TRUE(std::holds_alternative<WireError>(decoded));
    EXPECT_EQ(WireError::Malformed, std::get<WireError>(decoded));
}

TEST(NetWire, FirstErrorPoisonsTheDecoder)
{
    std::vector<uint8_t> bad = encodeFrame(Message{Submit{}});
    bad[0] = 'X';
    FrameDecoder decoder;
    decoder.feed(bad);
    EXPECT_EQ(WireError::BadMagic, expectError(decoder));
    // A pristine frame after the poison must NOT decode: nothing past
    // the first corrupt byte is ever interpreted.
    decoder.feed(encodeFrame(Message{Hello{}}));
    EXPECT_EQ(WireError::BadMagic, expectError(decoder));
    EXPECT_TRUE(decoder.poisoned());
}

TEST(NetWire, DeterministicGarbageNeverCrashesOrGrows)
{
    Rng rng(1234);
    for (int trial = 0; trial < 50; ++trial) {
        FrameDecoder decoder;
        for (int chunk = 0; chunk < 20; ++chunk) {
            std::vector<uint8_t> garbage(rng.nextBounded(257));
            for (auto &b : garbage)
                b = static_cast<uint8_t>(rng.next());
            decoder.feed(garbage);
            while (decoder.poll().has_value() && !decoder.poisoned()) {
            }
            // Poisoned decoders discard input; clean ones can buffer
            // at most one bounded frame.
            EXPECT_LE(decoder.buffered(),
                      kMaxFrameBytes + kFrameHeaderBytes);
        }
    }
}

TEST(NetWire, ErrorDetailIsBoundedOnTheWire)
{
    ProtoError error;
    error.detail.assign(10000, 'x');
    auto back = roundTripMessage(Message{error});
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(256u, std::get<ProtoError>(*back).detail.size());
}

TEST(NetRateLimiter, RefillsContinuouslyAndHintsRetry)
{
    TokenBucket bucket(10.0, 2.0); // 10/s, burst 2
    EXPECT_TRUE(bucket.tryTake(0.0));
    EXPECT_TRUE(bucket.tryTake(0.0));
    EXPECT_FALSE(bucket.tryTake(0.0));
    uint32_t hint = bucket.retryAfterMs(0.0);
    EXPECT_GE(hint, 1u);
    EXPECT_LE(hint, 100u);
    // One token refills every 100 ms at 10/s.
    EXPECT_TRUE(bucket.tryTake(101.0));
    EXPECT_FALSE(bucket.tryTake(101.0));

    TokenBucket unlimited(0.0);
    for (int i = 0; i < 1000; ++i)
        EXPECT_TRUE(unlimited.tryTake(0.0));
}

TEST(NetServer, ServesDigestProofsOverTheWire)
{
    DigestExecutor executor;
    obs::MetricsRegistry metrics;
    ServerOptions opt;
    opt.workers = 2;
    ProofServer server(opt, executor, &metrics);
    ASSERT_TRUE(server.start());

    SyncClient client;
    ASSERT_TRUE(client.connect(server.port(), 7));
    EXPECT_EQ(kWireVersion, client.ack().version);
    EXPECT_GT(client.ack().window, 0u);

    for (uint64_t id = 1; id <= 16; ++id) {
        Submit task;
        task.task_id = id;
        task.n_vars = 10;
        auto result = client.roundTrip(task);
        ASSERT_TRUE(result.has_value());
        EXPECT_EQ(Status::Ok, result->status);
        EXPECT_EQ(id, result->task_id);
        EXPECT_TRUE(verifyDigestProof(task, result->proof));
    }
    ServerStats stats = server.stats();
    EXPECT_EQ(16u, stats.submits);
    EXPECT_EQ(16u, stats.results_ok);
    EXPECT_EQ(16u, stats.tenants.at(7).results_ok);
    EXPECT_TRUE(metrics.has("bzk_net_submits_total"));
    EXPECT_TRUE(metrics.has("bzk_net_accept_to_result_ms"));
    server.stop();
    EXPECT_FALSE(server.running());
}

TEST(NetServer, ServedProofMatchesDurableDerivationAndVerifies)
{
    SnarkExecutor executor;
    ServerOptions opt;
    opt.workers = 1;
    ProofServer server(opt, executor);
    ASSERT_TRUE(server.start());

    SyncClient client;
    ASSERT_TRUE(client.connect(server.port()));
    Submit task;
    task.task_id = 31;
    task.n_vars = 8;
    task.seed = 99;
    auto result = client.roundTrip(task);
    ASSERT_TRUE(result.has_value());
    ASSERT_EQ(Status::Ok, result->status);

    auto proof = deserializeProof<Fr>(result->proof);
    ASSERT_TRUE(proof.has_value());
    Snark<Fr> verifier(task.n_vars, task.seed);
    EXPECT_TRUE(verifier.verify(*proof, {}));

    // Bit-identical to proving the same (task_id, seed, n_vars)
    // locally with the shared instance derivation: the wire adds no
    // entropy.
    Rng rng = taskInstanceRng(task.task_id, task.seed, task.n_vars);
    auto tables = randomInstance(task.n_vars, rng);
    Snark<Fr> local(task.n_vars, task.seed);
    EXPECT_EQ(serializeProof(local.prove(tables, {})), result->proof);
}

TEST(NetServer, ServesHighDegreeProofsAndCountsPerKind)
{
    SnarkExecutor executor;
    ServerOptions opt;
    opt.workers = 1;
    obs::MetricsRegistry metrics;
    ProofServer server(opt, executor, &metrics);
    ASSERT_TRUE(server.start());

    SyncClient client;
    ASSERT_TRUE(client.connect(server.port()));
    // The handshake lands on v2, so this connection may carry kinds.
    EXPECT_EQ(kWireVersion, client.version());

    Submit task;
    task.task_id = 41;
    task.n_vars = 8;
    task.seed = 3;
    task.kind = sched::ProtocolKind::HighDegreeGate;
    auto result = client.roundTrip(task);
    ASSERT_TRUE(result.has_value());
    ASSERT_EQ(Status::Ok, result->status);

    auto proof = deserializeHighDegreeProof<Fr>(result->proof);
    ASSERT_TRUE(proof.has_value());
    HighDegreeSnark<Fr> verifier(task.n_vars, task.seed);
    EXPECT_TRUE(verifier.verify(*proof, {}));

    // Bit-identical to a local prove from the shared (task_id, seed,
    // n_vars) instance derivation, exactly like the legacy protocol.
    Rng rng = taskInstanceRng(task.task_id, task.seed, task.n_vars);
    auto tables = highDegreeInstance<Fr>(task.n_vars, rng);
    HighDegreeSnark<Fr> local(task.n_vars, task.seed);
    EXPECT_EQ(serializeHighDegreeProof(local.prove(tables, {})),
              result->proof);

    // A legacy task on the same connection: both kinds interleave.
    Submit legacy;
    legacy.task_id = 42;
    legacy.n_vars = 8;
    legacy.seed = 3;
    auto legacy_result = client.roundTrip(legacy);
    ASSERT_TRUE(legacy_result.has_value());
    EXPECT_EQ(Status::Ok, legacy_result->status);

    ServerStats stats = server.stats();
    EXPECT_EQ(2u, stats.submits);
    EXPECT_EQ(1u,
              stats.submits_by_kind[static_cast<size_t>(
                  sched::ProtocolKind::TableCommit)]);
    EXPECT_EQ(1u,
              stats.submits_by_kind[static_cast<size_t>(
                  sched::ProtocolKind::HighDegreeGate)]);
    EXPECT_DOUBLE_EQ(
        metrics.counter("bzk_net_submits_table_commit_total").value(),
        1.0);
    EXPECT_DOUBLE_EQ(
        metrics.counter("bzk_net_submits_high_degree_gate_total")
            .value(),
        1.0);
}

TEST(NetServer, RejectsInvalidParameters)
{
    DigestExecutor executor;
    ServerOptions opt;
    opt.max_n_vars = 12;
    ProofServer server(opt, executor);
    ASSERT_TRUE(server.start());

    SyncClient client;
    ASSERT_TRUE(client.connect(server.port()));
    for (uint32_t n_vars : {uint32_t{4}, uint32_t{13}}) {
        Submit task;
        task.task_id = n_vars;
        task.n_vars = n_vars;
        auto result = client.roundTrip(task);
        ASSERT_TRUE(result.has_value());
        EXPECT_EQ(Status::Invalid, result->status);
    }
    EXPECT_EQ(2u, server.stats().invalid);
}

TEST(NetServer, RateLimitsPerTenantWithRetryHint)
{
    DigestExecutor executor;
    ServerOptions opt;
    opt.tenant_rate_per_s = 1.0;
    opt.tenant_burst = 1.0;
    ProofServer server(opt, executor);
    ASSERT_TRUE(server.start());

    SyncClient limited;
    ASSERT_TRUE(limited.connect(server.port(), 1));
    Submit task;
    task.task_id = 1;
    auto first = limited.roundTrip(task);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(Status::Ok, first->status);
    task.task_id = 2;
    auto second = limited.roundTrip(task);
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(Status::Retry, second->status);
    EXPECT_GT(second->retry_after_ms, 0u);

    // The bucket is per tenant: a different tenant is not throttled.
    SyncClient other;
    ASSERT_TRUE(other.connect(server.port(), 2));
    task.task_id = 3;
    auto third = other.roundTrip(task);
    ASSERT_TRUE(third.has_value());
    EXPECT_EQ(Status::Ok, third->status);

    ServerStats stats = server.stats();
    EXPECT_EQ(1u, stats.retries);
    EXPECT_EQ(1u, stats.tenants.at(1).retries);
    EXPECT_EQ(0u, stats.tenants.at(2).retries);
}

TEST(NetServer, ShedsAtQueueCapacityInSubmitOrder)
{
    SlowExecutor executor(100);
    ServerOptions opt;
    opt.window = 1;
    opt.workers = 1;
    opt.queue_capacity = 1;
    ProofServer server(opt, executor);
    ASSERT_TRUE(server.start());

    SyncClient client;
    ASSERT_TRUE(client.connect(server.port()));
    // Five pipelined submits: 1 admitted, 2 queued, 3..5 shed.
    for (uint64_t id = 1; id <= 5; ++id) {
        Submit task;
        task.task_id = id;
        ASSERT_TRUE(client.send(Message{task}));
    }
    size_t ok = 0, shed = 0;
    for (int i = 0; i < 5; ++i) {
        auto msg = client.receive(10000.0);
        ASSERT_TRUE(msg.has_value());
        auto *result = std::get_if<Result>(&*msg);
        ASSERT_NE(nullptr, result);
        if (result->status == Status::Ok)
            ++ok;
        else if (result->status == Status::Shed)
            ++shed;
    }
    EXPECT_EQ(2u, ok);
    EXPECT_EQ(3u, shed);
    EXPECT_EQ(3u, server.stats().sheds);
}

TEST(NetServer, ShedsQueuedWorkPastTheDeadline)
{
    SlowExecutor executor(150);
    ServerOptions opt;
    opt.window = 1;
    opt.workers = 1;
    opt.queue_timeout_ms = 40.0;
    ProofServer server(opt, executor);
    ASSERT_TRUE(server.start());

    SyncClient client;
    ASSERT_TRUE(client.connect(server.port()));
    for (uint64_t id = 1; id <= 2; ++id) {
        Submit task;
        task.task_id = id;
        ASSERT_TRUE(client.send(Message{task}));
    }
    // Task 1 occupies the window for 150 ms; task 2 waits past the
    // 40 ms deadline and must come back shed well before task 1's
    // proof.
    size_t ok = 0, shed = 0;
    for (int i = 0; i < 2; ++i) {
        auto msg = client.receive(10000.0);
        ASSERT_TRUE(msg.has_value());
        auto *result = std::get_if<Result>(&*msg);
        ASSERT_NE(nullptr, result);
        if (result->status == Status::Ok)
            ++ok;
        else if (result->status == Status::Shed)
            ++shed;
    }
    EXPECT_EQ(1u, ok);
    EXPECT_EQ(1u, shed);
    EXPECT_EQ(1u, server.stats().queue_timeouts);
}

TEST(NetServer, NegotiatesVersionAndRefusesUnsupportedRanges)
{
    DigestExecutor executor;
    ProofServer server({}, executor);
    ASSERT_TRUE(server.start());

    // A client whose whole range lies above what this build speaks
    // gets a typed UnsupportedVersion error, not a silent downgrade.
    Fd raw = connectTcp(server.port());
    ASSERT_TRUE(raw.valid());
    Hello hello;
    hello.min_version = kWireVersion + 1;
    hello.max_version = kWireVersion + 7;
    auto frame = encodeFrame(Message{hello});
    ASSERT_GT(sendSome(raw.get(), frame), 0);

    FrameDecoder decoder;
    uint8_t buf[4096];
    std::optional<Message> reply;
    for (int spin = 0; spin < 200 && !reply; ++spin) {
        ptrdiff_t n = recvSome(raw.get(), buf);
        if (n > 0)
            decoder.feed(std::span<const uint8_t>(
                buf, static_cast<size_t>(n)));
        else if (n == 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
        else
            break;
        if (auto polled = decoder.poll())
            reply = std::get<Message>(*polled);
    }
    ASSERT_TRUE(reply.has_value());
    auto *error = std::get_if<ProtoError>(&*reply);
    ASSERT_NE(nullptr, error);
    EXPECT_EQ(ErrorCode::UnsupportedVersion, error->code);
}

TEST(NetServer, RequiresHandshakeBeforeSubmit)
{
    DigestExecutor executor;
    ProofServer server({}, executor);
    ASSERT_TRUE(server.start());

    SyncClient client;
    // Bypass connect()'s handshake with a raw socket via the client's
    // framing: connect, send Submit first.
    Fd raw = connectTcp(server.port());
    ASSERT_TRUE(raw.valid());
    auto frame = encodeFrame(Message{Submit{}});
    ASSERT_GT(sendSome(raw.get(), frame), 0);
    FrameDecoder decoder;
    uint8_t buf[4096];
    std::optional<Message> reply;
    for (int spin = 0; spin < 200 && !reply; ++spin) {
        ptrdiff_t n = recvSome(raw.get(), buf);
        if (n > 0)
            decoder.feed(std::span<const uint8_t>(
                buf, static_cast<size_t>(n)));
        else if (n == 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
        else
            break;
        if (auto polled = decoder.poll())
            reply = std::get<Message>(*polled);
    }
    ASSERT_TRUE(reply.has_value());
    auto *error = std::get_if<ProtoError>(&*reply);
    ASSERT_NE(nullptr, error);
    EXPECT_EQ(ErrorCode::HandshakeRequired, error->code);
}

TEST(NetServer, SurvivesGarbageAndKeepsServingOthers)
{
    DigestExecutor executor;
    ProofServer server({}, executor);
    ASSERT_TRUE(server.start());

    // A well-behaved client before, during, and after the attack.
    SyncClient good;
    ASSERT_TRUE(good.connect(server.port()));

    Rng rng(777);
    for (int attack = 0; attack < 8; ++attack) {
        Fd raw = connectTcp(server.port());
        ASSERT_TRUE(raw.valid());
        std::vector<uint8_t> garbage(512);
        for (auto &b : garbage)
            b = static_cast<uint8_t>(rng.next());
        sendSome(raw.get(), garbage);
        // The server answers with a typed ProtoError and closes; the
        // socket draining to EOF proves no hang.
        uint8_t buf[4096];
        for (int spin = 0; spin < 400; ++spin) {
            ptrdiff_t n = recvSome(raw.get(), buf);
            if (n < 0)
                break;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(2));
        }
    }

    Submit task;
    task.task_id = 1;
    auto result = good.roundTrip(task);
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(Status::Ok, result->status);
    EXPECT_GT(server.stats().protocol_errors, 0u);
}

TEST(NetServer, ConcurrentClientsEachGetTheirOwnProofs)
{
    DigestExecutor executor;
    ServerOptions opt;
    opt.workers = 4;
    ProofServer server(opt, executor);
    ASSERT_TRUE(server.start());

    constexpr int kThreads = 8;
    constexpr uint64_t kTasks = 24;
    std::vector<std::thread> threads;
    std::vector<uint64_t> completed(kThreads, 0);
    for (int i = 0; i < kThreads; ++i)
        threads.emplace_back([&, i] {
            SyncClient client;
            if (!client.connect(server.port(),
                                static_cast<uint64_t>(i)))
                return;
            for (uint64_t t = 0; t < kTasks; ++t) {
                Submit task;
                task.task_id =
                    (static_cast<uint64_t>(i) << 32) | (t + 1);
                auto result = client.roundTrip(task);
                if (result && result->status == Status::Ok &&
                    result->task_id == task.task_id &&
                    verifyDigestProof(task, result->proof))
                    ++completed[i];
            }
        });
    for (auto &t : threads)
        t.join();
    for (int i = 0; i < kThreads; ++i)
        EXPECT_EQ(kTasks, completed[i]) << "client " << i;
    EXPECT_EQ(kThreads * kTasks, server.stats().results_ok);
}

TEST(NetLoadGen, SmallSoakLosesAndDuplicatesNothing)
{
    DigestExecutor executor;
    obs::MetricsRegistry metrics;
    ServerOptions opt;
    opt.workers = 4;
    opt.max_connections = 512;
    ProofServer server(opt, executor, &metrics);
    ASSERT_TRUE(server.start());

    LoadGenOptions load;
    load.port = server.port();
    load.connections = 48;
    load.tasks_per_conn = 8;
    load.tenants = 4;
    load.hot_fraction = 0.25;
    LoadGenReport report = runLoadGen(load);

    EXPECT_EQ(48u, report.connections_opened);
    EXPECT_EQ(0u, report.connections_failed);
    EXPECT_EQ(0u, report.lost);
    EXPECT_EQ(0u, report.duplicated);
    EXPECT_EQ(0u, report.bad_proofs);
    EXPECT_EQ(48u * 8u, report.results_ok);
    EXPECT_TRUE(report.clean());
    EXPECT_GT(report.throughput_per_s, 0.0);
    EXPECT_GE(report.p99_ms, report.p50_ms);

    ServerStats stats = server.stats();
    EXPECT_EQ(48u * 8u, stats.results_ok);
    EXPECT_EQ(4u, stats.tenants.size());
    EXPECT_GE(stats.peak_connections, 40u);
}

TEST(NetLoadGen, BackpressureResubmitsUntilEveryTaskCompletes)
{
    SlowExecutor executor(2);
    ServerOptions opt;
    opt.window = 2;
    opt.workers = 2;
    opt.queue_capacity = 4;
    opt.tenant_rate_per_s = 400.0;
    ProofServer server(opt, executor);
    ASSERT_TRUE(server.start());

    LoadGenOptions load;
    load.port = server.port();
    load.connections = 8;
    load.tasks_per_conn = 6;
    load.pipeline = 6;
    LoadGenReport report = runLoadGen(load);

    // The shape guarantees backpressure fired, and the resubmit loop
    // still completed every task exactly once.
    EXPECT_GT(report.retries + report.sheds, 0u);
    EXPECT_EQ(0u, report.lost);
    EXPECT_EQ(0u, report.duplicated);
    EXPECT_EQ(48u, report.results_ok);
    EXPECT_TRUE(report.clean());
}
