/**
 * @file
 * The observability layer: metric instruments and their exports, trace
 * recording and its Chrome JSON rendering, and — most important — the
 * pin that attaching observers leaves every proof bit-identical, the
 * same null-object discipline test_faults pins for the FaultInjector.
 */

#include <gtest/gtest.h>

#include "core/PipelinedSystem.h"
#include "core/Serialize.h"
#include "gpusim/Device.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "util/Rng.h"

namespace bzk {
namespace {

using obs::Histogram;
using obs::MetricsRegistry;
using obs::TraceRecorder;

TEST(Counter, AccumulatesAndIgnoresNegative)
{
    obs::Counter c;
    EXPECT_EQ(c.value(), 0.0);
    c.add();
    c.add(2.5);
    EXPECT_EQ(c.value(), 3.5);
    testing::internal::CaptureStderr();
    c.add(-1.0);
    std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("negative"), std::string::npos);
    EXPECT_EQ(c.value(), 3.5);
}

TEST(HistogramTest, BucketBoundariesFollowLeSemantics)
{
    Histogram h({1.0, 2.0, 5.0});
    // A sample on a bound belongs to that bound's bucket (le = "<=").
    h.observe(0.5); // le 1
    h.observe(1.0); // le 1 (boundary)
    h.observe(1.5); // le 2
    h.observe(2.0); // le 2 (boundary)
    h.observe(5.0); // le 5 (boundary)
    h.observe(7.0); // +Inf
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 2u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_EQ(h.bucketCount(3), 1u); // +Inf bucket
    EXPECT_EQ(h.cumulativeCount(0), 2u);
    EXPECT_EQ(h.cumulativeCount(1), 4u);
    EXPECT_EQ(h.cumulativeCount(2), 5u);
    EXPECT_EQ(h.cumulativeCount(3), 6u);
    EXPECT_EQ(h.count(), 6u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 5.0 + 7.0);
}

TEST(HistogramTest, NegativeAndHugeSamplesLandInEdgeBuckets)
{
    Histogram h({0.0, 10.0});
    h.observe(-3.0); // le 0
    h.observe(1e30); // +Inf
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 0u);
    EXPECT_EQ(h.bucketCount(2), 1u);
}

TEST(FormatMetricValue, IntegersDropThePoint)
{
    EXPECT_EQ(obs::formatMetricValue(0.0), "0");
    EXPECT_EQ(obs::formatMetricValue(42.0), "42");
    EXPECT_EQ(obs::formatMetricValue(-7.0), "-7");
    EXPECT_EQ(obs::formatMetricValue(2.5), "2.5");
}

TEST(MetricsRegistryTest, LookupCreatesOnceAndFindsLater)
{
    MetricsRegistry reg;
    reg.counter("bzk_a_total").add(1);
    reg.counter("bzk_a_total").add(1);
    EXPECT_EQ(reg.counter("bzk_a_total").value(), 2.0);
    EXPECT_TRUE(reg.has("bzk_a_total"));
    EXPECT_FALSE(reg.has("bzk_b_total"));
    reg.gauge("bzk_g").set(5);
    reg.histogram("bzk_h", {1.0});
    EXPECT_EQ(reg.size(), 3u);
}

TEST(MetricsRegistryTest, InvalidNameWarnsButWorks)
{
    MetricsRegistry reg;
    testing::internal::CaptureStderr();
    reg.counter("0bad name").add(1);
    std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("not a valid Prometheus"), std::string::npos);
    EXPECT_EQ(reg.counter("0bad name").value(), 1.0);
}

TEST(MetricsRegistryTest, PrometheusExportGolden)
{
    MetricsRegistry reg;
    reg.counter("bzk_tasks_total", "proof tasks admitted").add(3);
    reg.gauge("bzk_util").set(0.5);
    auto &h = reg.histogram("bzk_cycle_ms", {1.0, 2.0}, "cycle time");
    h.observe(0.5);
    h.observe(1.5);
    h.observe(9.0);
    EXPECT_EQ(reg.toPrometheus(),
              "# HELP bzk_tasks_total proof tasks admitted\n"
              "# TYPE bzk_tasks_total counter\n"
              "bzk_tasks_total 3\n"
              "# TYPE bzk_util gauge\n"
              "bzk_util 0.5\n"
              "# HELP bzk_cycle_ms cycle time\n"
              "# TYPE bzk_cycle_ms histogram\n"
              "bzk_cycle_ms_bucket{le=\"1\"} 1\n"
              "bzk_cycle_ms_bucket{le=\"2\"} 2\n"
              "bzk_cycle_ms_bucket{le=\"+Inf\"} 3\n"
              "bzk_cycle_ms_sum 11\n"
              "bzk_cycle_ms_count 3\n");
}

TEST(MetricsRegistryTest, JsonExportGolden)
{
    MetricsRegistry reg;
    reg.counter("bzk_tasks_total").add(3);
    reg.gauge("bzk_util").set(0.5);
    auto &h = reg.histogram("bzk_cycle_ms", {1.0, 2.0});
    h.observe(0.5);
    h.observe(9.0);
    EXPECT_EQ(reg.toJson(),
              "{\"counters\":{\"bzk_tasks_total\":3},"
              "\"gauges\":{\"bzk_util\":0.5},"
              "\"histograms\":{\"bzk_cycle_ms\":{\"buckets\":["
              "{\"le\":1,\"count\":1},{\"le\":2,\"count\":0},"
              "{\"le\":\"+Inf\",\"count\":1}],"
              "\"sum\":9.5,\"count\":2}}}");
}

TEST(MetricsRegistryTest, ExportOrderIsLexicographic)
{
    MetricsRegistry reg;
    reg.counter("bzk_z_total").add(1);
    reg.counter("bzk_a_total").add(1);
    std::string text = reg.toPrometheus();
    EXPECT_LT(text.find("bzk_a_total"), text.find("bzk_z_total"));
}

TEST(TraceRecorderTest, SpanNestingDepth)
{
    TraceRecorder rec;
    // Three spans on one track: an outer one, a nested one, and a
    // later disjoint one. Depth is 2, not 3.
    rec.span("lane:merkle", "outer", "merkle", 0.0, 10.0, 0);
    rec.span("lane:merkle", "inner", "merkle", 2.0, 8.0, 0);
    rec.span("lane:merkle", "later", "merkle", 11.0, 12.0, 1);
    rec.span("lane:encoder", "other", "encoder", 0.0, 5.0, 0);
    EXPECT_EQ(rec.maxNestingDepth("lane:merkle"), 2u);
    EXPECT_EQ(rec.maxNestingDepth("lane:encoder"), 1u);
    EXPECT_EQ(rec.maxNestingDepth("no-such-track"), 0u);
    EXPECT_EQ(rec.spanCount("merkle"), 3u);
    EXPECT_EQ(rec.spanCount("encoder"), 1u);
}

TEST(TraceRecorderTest, BackwardsSpanIsDroppedWithWarning)
{
    TraceRecorder rec;
    testing::internal::CaptureStderr();
    rec.span("t", "bad", "c", 5.0, 4.0);
    std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("TraceRecorder"), std::string::npos);
    EXPECT_TRUE(rec.spans().empty());
}

TEST(TraceRecorderTest, ChromeJsonShape)
{
    TraceRecorder rec;
    rec.span("lane:sumcheck", "sumcheck[c3]", "sumcheck", 1.0, 2.5, 3);
    rec.instant("faults", "lane-failure[c3]", "fault", 1.5, 3);
    std::string json = rec.chromeTraceJson();
    // Track metadata, complete event, instant event — timestamps in
    // microseconds.
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("\"lane:sumcheck\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\":1000"), std::string::npos);
    EXPECT_NE(json.find("\"dur\":1500"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"cycle\":3"), std::string::npos);
    // A bare event array is the canonical chrome://tracing format.
    EXPECT_EQ(json.front(), '[');
    EXPECT_EQ(json.back(), ']');
}

TEST(TraceRecorderTest, ClearDropsEverything)
{
    TraceRecorder rec;
    rec.span("t", "s", "c", 0.0, 1.0);
    rec.instant("t", "i", "c", 0.5);
    rec.clear();
    EXPECT_TRUE(rec.spans().empty());
    EXPECT_TRUE(rec.instants().empty());
    EXPECT_EQ(rec.maxNestingDepth("t"), 0u);
}

/** One batch run, optionally observed. */
SystemRunResult
runSystem(bool observed, MetricsRegistry *metrics, TraceRecorder *trace)
{
    gpusim::Device dev(gpusim::DeviceSpec::v100());
    SystemOptions opt;
    opt.functional = 1;
    opt.seed = 2024;
    PipelinedZkpSystem system(dev, opt);
    if (observed) {
        dev.setTraceRecorder(trace);
        system.setObservability(metrics, trace);
    }
    Rng rng(2024);
    return system.run(24, 10, rng);
}

TEST(ObserverDiscipline, InstrumentedRunIsBitIdentical)
{
    // The whole layer is observe-only: a run with a registry and a
    // recorder attached must produce byte-identical proofs and
    // identical timing to a run that never heard of obs.
    auto plain = runSystem(false, nullptr, nullptr);
    MetricsRegistry metrics;
    TraceRecorder trace;
    auto observed = runSystem(true, &metrics, &trace);

    EXPECT_EQ(plain.stats.total_ms, observed.stats.total_ms);
    EXPECT_EQ(plain.stats.throughput_per_ms,
              observed.stats.throughput_per_ms);
    EXPECT_EQ(plain.stats.first_latency_ms,
              observed.stats.first_latency_ms);
    EXPECT_EQ(plain.stats.peak_device_bytes,
              observed.stats.peak_device_bytes);
    EXPECT_EQ(plain.cycle_ms, observed.cycle_ms);
    ASSERT_EQ(plain.proofs.size(), observed.proofs.size());
    for (size_t i = 0; i < plain.proofs.size(); ++i)
        EXPECT_EQ(serializeProof(plain.proofs[i]),
                  serializeProof(observed.proofs[i]))
            << "proof " << i << " diverged under observation";

    // And the observers actually saw the run.
    EXPECT_GT(metrics.counter("bzk_cycles_total").value(), 0.0);
    EXPECT_EQ(metrics.counter("bzk_tasks_total").value(), 24.0);
    EXPECT_GT(trace.spanCount("encoder"), 0u);
    EXPECT_GT(trace.spanCount("merkle"), 0u);
    EXPECT_GT(trace.spanCount("sumcheck"), 0u);
    EXPECT_GT(trace.spanCount("h2d"), 0u);
}

TEST(ObserverDiscipline, MetricsMatchRunStats)
{
    MetricsRegistry metrics;
    TraceRecorder trace;
    auto r = runSystem(true, &metrics, &trace);
    EXPECT_EQ(metrics.counter("bzk_tasks_total").value(),
              static_cast<double>(r.stats.batch));
    EXPECT_EQ(metrics.gauge("bzk_utilization").value(),
              r.stats.utilization);
    auto &h = metrics.histogram("bzk_cycle_ms", {});
    EXPECT_EQ(h.count(), metrics.counter("bzk_cycles_total").value());
}

} // namespace
} // namespace bzk
