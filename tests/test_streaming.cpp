/**
 * @file
 * Robustness tests for the streaming proof service: sojourn-percentile
 * monotonicity, saturation beyond capacity, and the timeout / retry /
 * shed machinery — including under injected transfer stalls.
 */

#include <gtest/gtest.h>

#include <string>

#include <unistd.h>

#include "core/StreamingService.h"
#include "gpusim/Device.h"
#include "gpusim/FaultInjector.h"
#include "journal/Journal.h"
#include "journal/Replay.h"

namespace bzk {
namespace {

class StreamingRobustnessTest : public ::testing::Test
{
  protected:
    /** Admission interval of the service at these options. */
    double
    cycleMs()
    {
        StreamingOptions tiny;
        tiny.n_vars = kVars;
        tiny.num_requests = 10;
        Rng probe(0);
        return StreamingZkpService(dev_, opt_).run(tiny, probe).cycle_ms;
    }

    StreamingResult
    runAtLoad(double load, StreamingOptions w, uint64_t seed = 3)
    {
        w.n_vars = kVars;
        w.arrival_rate_per_ms = load / cycleMs();
        Rng rng(seed);
        return StreamingZkpService(dev_, opt_).run(w, rng);
    }

    static constexpr unsigned kVars = 16;
    gpusim::Device dev_{gpusim::DeviceSpec::gh200()};
    SystemOptions opt_{};
};

TEST_F(StreamingRobustnessTest, PercentilesAreMonotone)
{
    for (double load : {0.3, 0.8, 1.3}) {
        StreamingOptions w;
        w.num_requests = 2000;
        auto r = runAtLoad(load, w);
        EXPECT_LE(r.p50_ms, r.p90_ms) << "load " << load;
        EXPECT_LE(r.p90_ms, r.p99_ms) << "load " << load;
        EXPECT_LE(r.p99_ms, r.max_ms) << "load " << load;
        EXPECT_GT(r.p50_ms, 0.0) << "load " << load;
    }
}

TEST_F(StreamingRobustnessTest, UnboundedOverloadGrowsTheQueue)
{
    // offered_load > 1 with no guard rails: the queue grows with the
    // run length — the failure mode the shed policy exists to prevent.
    StreamingOptions w;
    w.num_requests = 1000;
    auto small = runAtLoad(2.0, w);
    w.num_requests = 4000;
    auto large = runAtLoad(2.0, w);
    EXPECT_GT(small.offered_load, 1.5);
    EXPECT_GT(large.max_queue, 2 * small.max_queue);
    EXPECT_EQ(small.shed, 0u);
}

TEST_F(StreamingRobustnessTest, ShedPolicyBoundsQueueAtDoubleLoad)
{
    StreamingOptions w;
    w.num_requests = 4000;
    w.queue_capacity = 64;
    auto r = runAtLoad(2.0, w);
    EXPECT_GT(r.offered_load, 1.5);
    EXPECT_GT(r.shed, 0u);
    EXPECT_LE(r.max_queue, 64u);
    // Every request terminates exactly once: proved or shed.
    EXPECT_EQ(r.completed + r.shed, w.num_requests);
    // The pipeline still completes one proof per cycle.
    EXPECT_NEAR(r.throughput_per_ms * r.cycle_ms, 1.0, 0.05);
    // Bounded queue => bounded sojourn: no completed request waited
    // longer than the queue bound plus the pipeline depth.
    double bound =
        (64.0 + 2.0 + static_cast<double>(r.depth)) * r.cycle_ms;
    EXPECT_LE(r.max_ms, bound);
}

TEST_F(StreamingRobustnessTest, TimeoutsFireUnderInjectedStalls)
{
    // Stall the streamed input 6x for a long window mid-run: cycles
    // stretch, requests overstay their admission timeout, retries (with
    // backoff) fire, and the counters record all of it.
    gpusim::FaultPlan plan;
    plan.events.push_back(
        {gpusim::FaultKind::TransferStall, 50, 450, 6.0});
    gpusim::FaultInjector inj(plan, 11);
    dev_.setFaultInjector(&inj);

    StreamingOptions w;
    w.num_requests = 1500;
    double cycle = cycleMs();
    w.timeout_ms = 8.0 * cycle;
    w.max_retries = 2;
    auto r = runAtLoad(0.9, w);
    dev_.setFaultInjector(nullptr);

    EXPECT_GT(r.timed_out, 0u);
    EXPECT_GT(r.retried, 0u);
    EXPECT_LE(r.retried, r.timed_out);
    // completed + shed + permanently dropped covers every request.
    size_t dropped = r.timed_out - r.retried;
    EXPECT_EQ(r.completed + r.shed + dropped, w.num_requests);
    // Completed requests never waited past timeout + pipeline depth
    // (sojourns include the backoff of earlier attempts, bounded by
    // max_retries * (timeout + max backoff)).
    double per_attempt = w.timeout_ms + 4.0 * cycle;
    EXPECT_LE(r.max_ms,
              3.0 * per_attempt +
                  static_cast<double>(r.depth) * cycle + cycle);
}

TEST_F(StreamingRobustnessTest, RetriesEventuallyComplete)
{
    // A brief stall burst with generous retries: some requests time out
    // and re-submit, but nearly everything completes in the end.
    gpusim::FaultPlan plan;
    plan.events.push_back(
        {gpusim::FaultKind::TransferStall, 20, 120, 8.0});
    gpusim::FaultInjector inj(plan, 12);
    dev_.setFaultInjector(&inj);

    StreamingOptions w;
    w.num_requests = 1200;
    double cycle = cycleMs();
    w.timeout_ms = 20.0 * cycle;
    w.max_retries = 8;
    auto r = runAtLoad(0.5, w);
    dev_.setFaultInjector(nullptr);

    EXPECT_GT(r.timed_out, 0u);
    EXPECT_GT(r.completed,
              static_cast<size_t>(0.95 * w.num_requests));
}

TEST_F(StreamingRobustnessTest, UnreachedGuardRailsChangeNothing)
{
    // Robustness options that never trigger must leave every reported
    // quantity bit-identical to the unguarded run.
    StreamingOptions plain;
    plain.num_requests = 1500;
    auto a = runAtLoad(0.8, plain, 5);

    StreamingOptions guarded = plain;
    guarded.timeout_ms = 1e9;
    guarded.max_retries = 3;
    guarded.queue_capacity = 1u << 20;
    auto b = runAtLoad(0.8, guarded, 5);

    EXPECT_EQ(a.p50_ms, b.p50_ms);
    EXPECT_EQ(a.p99_ms, b.p99_ms);
    EXPECT_EQ(a.max_ms, b.max_ms);
    EXPECT_EQ(a.mean_queue, b.mean_queue);
    EXPECT_EQ(a.throughput_per_ms, b.throughput_per_ms);
    EXPECT_EQ(b.timed_out, 0u);
    EXPECT_EQ(b.retried, 0u);
    EXPECT_EQ(b.shed, 0u);
    EXPECT_EQ(b.completed, plain.num_requests);
}

TEST_F(StreamingRobustnessTest, DeterministicUnderFaults)
{
    gpusim::FaultPlan plan;
    plan.events.push_back(
        {gpusim::FaultKind::TransferStall, 10, 200, 4.0});
    plan.events.push_back(
        {gpusim::FaultKind::LaneFailure, 100, 300, 0.2});

    auto once = [&] {
        gpusim::FaultInjector inj(plan, 9);
        dev_.setFaultInjector(&inj);
        StreamingOptions w;
        w.num_requests = 800;
        w.timeout_ms = 10.0 * cycleMs();
        w.max_retries = 1;
        w.queue_capacity = 128;
        auto r = runAtLoad(1.1, w, 13);
        dev_.setFaultInjector(nullptr);
        return r;
    };
    auto a = once();
    auto b = once();
    EXPECT_EQ(a.p99_ms, b.p99_ms);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.timed_out, b.timed_out);
    EXPECT_EQ(a.retried, b.retried);
    EXPECT_EQ(a.shed, b.shed);
    EXPECT_EQ(a.max_queue, b.max_queue);
}

TEST_F(StreamingRobustnessTest, AttachedJournalRecordsEveryAdmission)
{
    char tmpl[] = "/tmp/bzk_stream_XXXXXX";
    std::string dir = ::mkdtemp(tmpl);

    StreamingOptions w;
    w.n_vars = kVars;
    w.num_requests = 200;
    w.arrival_rate_per_ms = 0.5 / cycleMs();
    StreamingResult with_journal;
    {
        journal::Journal journal({dir});
        StreamingZkpService service(dev_, opt_);
        service.setJournal(&journal);
        Rng rng(3);
        with_journal = service.run(w, rng);
        EXPECT_EQ(journal.stats().task_appends,
                  with_journal.completed);
        EXPECT_EQ(journal.stats().completion_appends,
                  with_journal.completed);
    }
    // Every admitted request was journaled and acked: replay finds a
    // fully-acked ledger with nothing left to re-submit.
    auto replayed = journal::replayJournal(dir);
    EXPECT_FALSE(replayed.torn.torn);
    EXPECT_TRUE(replayed.pending.empty());
    EXPECT_EQ(replayed.completions.size(), with_journal.completed);

    // Pure observer: the simulated results are identical without it.
    Rng rng(3);
    auto without = StreamingZkpService(dev_, opt_).run(w, rng);
    EXPECT_EQ(without.completed, with_journal.completed);
    EXPECT_EQ(without.p99_ms, with_journal.p99_ms);
    EXPECT_EQ(without.max_queue, with_journal.max_queue);

    for (uint64_t i = 1; i <= 16; ++i)
        ::unlink(journal::Journal::segmentPath(dir, i).c_str());
    ::rmdir(dir.c_str());
}

} // namespace
} // namespace bzk
