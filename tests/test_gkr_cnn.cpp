/**
 * @file
 * Tests for the zkCNN-style path: a CnnModel compiled into a layered
 * circuit and proven with GKR. The layered evaluation must agree with
 * the integer engine exactly, and the GKR proof must verify (and fail
 * on forged logits).
 */

#include <gtest/gtest.h>

#include "ff/Fields.h"
#include "gkr/Gkr.h"
#include "zkml/LayeredCnnCompiler.h"

namespace bzk {
namespace {

Tensor
sampleImage(Rng &rng, const CnnConfig &cfg, int bound = 4)
{
    Tensor img(cfg.in_channels, cfg.in_height, cfg.in_width);
    for (auto &p : img.data)
        p = static_cast<int64_t>(rng.nextBounded(bound));
    return img;
}

CnnConfig
smallConfig()
{
    CnnConfig cfg;
    cfg.in_channels = 1;
    cfg.in_height = 4;
    cfg.in_width = 4;
    cfg.layers = {
        {CnnLayer::Kind::Conv3x3, 2},
        {CnnLayer::Kind::Square, 0},
        {CnnLayer::Kind::SumPool2x2, 0},
        {CnnLayer::Kind::Dense, 3},
    };
    return cfg;
}

TEST(LayeredCnn, MatchesEngineOnSmallConfig)
{
    Rng rng(1);
    CnnModel model(smallConfig(), rng);
    auto compiled = compileCnnLayered<Fr>(model);

    Tensor image = sampleImage(rng, model.config());
    Tensor expect = model.forward(image);

    auto inputs = layeredCnnInputs<Fr>(model, image);
    auto values = compiled.circuit.evaluate(inputs);
    ASSERT_GE(values.back().size(), compiled.num_outputs);
    ASSERT_EQ(compiled.num_outputs, expect.data.size());
    for (size_t i = 0; i < compiled.num_outputs; ++i)
        EXPECT_EQ(values.back()[i], fieldFromInt<Fr>(expect.data[i]))
            << "logit " << i;
}

TEST(LayeredCnn, MatchesEngineOnTinyConfig)
{
    Rng rng(2);
    CnnModel model(CnnConfig::tiny(), rng);
    auto compiled = compileCnnLayered<Fr>(model);
    Tensor image = sampleImage(rng, model.config());
    Tensor expect = model.forward(image);
    auto inputs = layeredCnnInputs<Fr>(model, image);
    auto values = compiled.circuit.evaluate(inputs);
    for (size_t i = 0; i < compiled.num_outputs; ++i)
        EXPECT_EQ(values.back()[i], fieldFromInt<Fr>(expect.data[i]))
            << "logit " << i;
}

TEST(LayeredCnn, GkrProofOfInferenceVerifies)
{
    Rng rng(3);
    CnnModel model(smallConfig(), rng);
    auto compiled = compileCnnLayered<Fr>(model);
    Tensor image = sampleImage(rng, model.config());
    auto inputs = layeredCnnInputs<Fr>(model, image);

    Gkr<Fr> gkr(compiled.circuit);
    Transcript pt("zkcnn");
    auto proof = gkr.prove(inputs, pt);

    // The proven logits equal the engine's.
    Tensor expect = model.forward(image);
    for (size_t i = 0; i < compiled.num_outputs; ++i)
        EXPECT_EQ(proof.outputs[i], fieldFromInt<Fr>(expect.data[i]));

    Transcript vt("zkcnn");
    EXPECT_TRUE(gkr.verify(proof, inputs, vt));
}

TEST(LayeredCnn, GkrRejectsForgedLogit)
{
    Rng rng(4);
    CnnModel model(smallConfig(), rng);
    auto compiled = compileCnnLayered<Fr>(model);
    Tensor image = sampleImage(rng, model.config());
    auto inputs = layeredCnnInputs<Fr>(model, image);

    Gkr<Fr> gkr(compiled.circuit);
    Transcript pt("zkcnn");
    auto proof = gkr.prove(inputs, pt);
    proof.outputs[1] += Fr::one(); // claim a different logit
    Transcript vt("zkcnn");
    EXPECT_FALSE(gkr.verify(proof, inputs, vt));
}

TEST(LayeredCnn, GkrRejectsDifferentImage)
{
    Rng rng(5);
    CnnModel model(smallConfig(), rng);
    auto compiled = compileCnnLayered<Fr>(model);
    Tensor image = sampleImage(rng, model.config());
    auto inputs = layeredCnnInputs<Fr>(model, image);

    Gkr<Fr> gkr(compiled.circuit);
    Transcript pt("zkcnn");
    auto proof = gkr.prove(inputs, pt);
    auto other = inputs;
    other[2] += Fr::one();
    Transcript vt("zkcnn");
    EXPECT_FALSE(gkr.verify(proof, other, vt));
}

TEST(LayeredCnn, ProofFarSmallerThanWork)
{
    // GKR's succinctness on the CNN: proof bytes << total gate count *
    // field size.
    Rng rng(6);
    CnnModel model(CnnConfig::tiny(), rng);
    auto compiled = compileCnnLayered<Fr>(model);
    Tensor image = sampleImage(rng, model.config());
    auto inputs = layeredCnnInputs<Fr>(model, image);
    Gkr<Fr> gkr(compiled.circuit);
    Transcript pt("zkcnn");
    auto proof = gkr.prove(inputs, pt);
    size_t work_bytes = compiled.circuit.numGates() * Fr::kNumBytes;
    EXPECT_LT(proof.sizeBytes(), work_bytes / 4);
}

} // namespace
} // namespace bzk
