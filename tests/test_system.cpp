/**
 * @file
 * Tests for the fully pipelined ZKP system (Figure 7), the same-modules
 * CPU baseline, and the old-protocol (NTT+MSM) baselines.
 */

#include <gtest/gtest.h>

#include <thread>

#include "baseline/OldProtocol.h"
#include "core/PipelinedSystem.h"
#include "core/Serialize.h"
#include "gpusim/Device.h"

namespace bzk {
namespace {

class SystemTest : public ::testing::Test
{
  protected:
    gpusim::Device dev_{gpusim::DeviceSpec::v100()};
};

TEST_F(SystemTest, FunctionalProofsVerify)
{
    SystemOptions opt;
    opt.functional = 2;
    Rng rng(1);
    PipelinedZkpSystem system(dev_, opt);
    auto result = system.run(4, 10, rng);
    EXPECT_EQ(result.proofs.size(), 2u);
    EXPECT_TRUE(result.verified);
}

TEST_F(SystemTest, ProofBytesBitIdenticalAcrossThreadCounts)
{
    // End-to-end pin of the host-parallel prover: the serialized proof
    // bytes (commitments, every sum-check round, every opening) must
    // not depend on SystemOptions::threads.
    auto proofBytes = [&](size_t threads) {
        SystemOptions opt;
        opt.functional = 1;
        opt.threads = threads;
        Rng rng(42);
        PipelinedZkpSystem system(dev_, opt);
        auto result = system.run(1, 10, rng);
        EXPECT_TRUE(result.verified) << "threads=" << threads;
        EXPECT_EQ(result.proofs.size(), 1u);
        return serializeProof(result.proofs.at(0));
    };
    auto reference = proofBytes(1);
    EXPECT_EQ(proofBytes(2), reference);
    size_t hw = std::thread::hardware_concurrency();
    EXPECT_EQ(proofBytes(hw ? hw : 4), reference);
}

TEST_F(SystemTest, WorkModelComponentsPositive)
{
    for (unsigned n : {12u, 16u, 20u}) {
        auto model = systemWorkModel(n, 2024);
        EXPECT_GT(model.encoder_cycles, 0.0) << n;
        EXPECT_GT(model.merkle_cycles, 0.0) << n;
        EXPECT_GT(model.sumcheck_cycles, 0.0) << n;
        EXPECT_GT(model.totalStages(), 10u) << n;
        EXPECT_GT(model.h2d_bytes, 0u) << n;
    }
}

TEST_F(SystemTest, WorkModelScalesWithSize)
{
    auto small = systemWorkModel(16, 2024);
    auto large = systemWorkModel(20, 2024);
    // 16x the rows should cost roughly 16x the work (within 2x slack
    // for shape effects).
    double ratio = large.totalCycles() / small.totalCycles();
    EXPECT_GT(ratio, 8.0);
    EXPECT_LT(ratio, 32.0);
}

TEST_F(SystemTest, ModuleBreakdownSumsToCycle)
{
    SystemOptions opt;
    opt.functional = 0;
    Rng rng(2);
    PipelinedZkpSystem system(dev_, opt);
    auto result = system.run(64, 18, rng);
    double sum =
        result.encoder_ms + result.merkle_ms + result.sumcheck_ms;
    EXPECT_NEAR(sum, result.comp_ms_per_cycle, result.comp_ms_per_cycle * 0.1);
}

TEST_F(SystemTest, LaneAllocationProportionalAndComplete)
{
    SystemOptions opt;
    opt.functional = 0;
    Rng rng(3);
    PipelinedZkpSystem system(dev_, opt);
    auto result = system.run(32, 18, rng);
    double total = result.lanes_encoder + result.lanes_merkle +
                   result.lanes_sumcheck;
    EXPECT_NEAR(total, dev_.spec().cuda_cores, 1.0);
    // Allocation follows cost: each module's lane share matches its
    // time share.
    double time_total =
        result.encoder_ms + result.merkle_ms + result.sumcheck_ms;
    EXPECT_NEAR(result.lanes_encoder / total,
                result.encoder_ms / time_total, 0.02);
}

TEST_F(SystemTest, SteadyStateThroughputApproachesCycleRate)
{
    SystemOptions opt;
    opt.functional = 0;
    Rng rng(4);
    PipelinedZkpSystem system(dev_, opt);
    auto result = system.run(512, 16, rng);
    double ideal = 1.0 / result.cycle_ms;
    EXPECT_GT(result.stats.throughput_per_ms, ideal * 0.8);
    EXPECT_LE(result.stats.throughput_per_ms, ideal * 1.05);
}

TEST_F(SystemTest, LatencyIsDepthTimesCycle)
{
    SystemOptions opt;
    opt.functional = 0;
    Rng rng(5);
    PipelinedZkpSystem system(dev_, opt);
    auto result = system.run(128, 16, rng);
    EXPECT_GT(result.stats.first_latency_ms,
              result.comp_ms_per_cycle * 10.0);
}

TEST_F(SystemTest, CommunicationOverlapsComputation)
{
    // Table 9's claim: with multi-stream loading, overall cycle time is
    // max(comm, comp) + epsilon, not comm + comp.
    SystemOptions opt;
    opt.functional = 0;
    Rng rng(6);
    PipelinedZkpSystem system(dev_, opt);
    auto result = system.run(256, 18, rng);
    double serial = result.comm_ms_per_cycle + result.comp_ms_per_cycle;
    double actual = result.stats.total_ms / 256.0;
    EXPECT_LT(actual, serial * 0.95);
}

TEST_F(SystemTest, DeviceMemoryIndependentOfBatch)
{
    SystemOptions opt;
    opt.functional = 0;
    Rng rng(7);
    PipelinedZkpSystem system(dev_, opt);
    auto small = system.run(16, 16, rng);
    auto large = system.run(256, 16, rng);
    EXPECT_EQ(small.stats.peak_device_bytes,
              large.stats.peak_device_bytes);
}

TEST_F(SystemTest, CpuBaselineVerifiesAndIsSlower)
{
    SystemOptions opt;
    Rng rng(8);
    SameModulesCpuBaseline cpu(opt, /*measure_cap_vars=*/10);
    auto cpu_result = cpu.run(8, 10, rng);
    EXPECT_TRUE(cpu_result.verified);

    opt.functional = 0;
    PipelinedZkpSystem gpu(dev_, opt);
    auto gpu_result = gpu.run(8, 10, rng);
    EXPECT_GT(cpu_result.stats.first_latency_ms * 5.0,
              gpu_result.stats.item_latency_ms);
    EXPECT_GT(gpu_result.stats.throughput_per_ms,
              cpu_result.stats.throughput_per_ms);
}

TEST_F(SystemTest, ThroughputScalesAcrossGpus)
{
    // Table 8's shape: newer cards with more lane-throughput give more
    // proofs per second.
    SystemOptions opt;
    opt.functional = 0;
    Rng rng(9);
    gpusim::Device v100(gpusim::DeviceSpec::v100());
    gpusim::Device h100(gpusim::DeviceSpec::h100());
    auto on_v100 = PipelinedZkpSystem(v100, opt).run(128, 18, rng);
    auto on_h100 = PipelinedZkpSystem(h100, opt).run(128, 18, rng);
    double ratio = on_h100.stats.throughput_per_ms /
                   on_v100.stats.throughput_per_ms;
    EXPECT_GT(ratio, 2.0);
    EXPECT_LT(ratio, 8.0);
}

TEST_F(SystemTest, RandomInstanceIsSatisfied)
{
    Rng rng(10);
    auto tables = randomInstance(10, rng);
    EXPECT_EQ(tables.n_vars, 10u);
    for (size_t i = 0; i < tables.a.size(); ++i)
        EXPECT_EQ(tables.a[i] * tables.b[i], tables.c[i]) << "row " << i;
}

class OldProtocolTest : public ::testing::Test
{
  protected:
    gpusim::Device dev_{gpusim::DeviceSpec::v100()};
};

TEST_F(OldProtocolTest, CpuBaselineBreakdownPositive)
{
    Rng rng(11);
    LibsnarkLikeCpu cpu(/*measure_cap_log=*/10);
    auto result = cpu.run(4, 12, rng);
    EXPECT_GT(result.ntt_ms, 0.0);
    EXPECT_GT(result.msm_ms, 0.0);
    EXPECT_NEAR(result.proof_ms,
                result.synthesis_ms + result.ntt_ms + result.msm_ms,
                1e-9);
    EXPECT_GT(result.msm_ms, result.ntt_ms); // MSM dominates Groth16
}

TEST_F(OldProtocolTest, CpuScalesSuperlinearly)
{
    Rng rng(12);
    LibsnarkLikeCpu cpu(10);
    auto small = cpu.run(1, 12, rng);
    auto large = cpu.run(1, 16, rng);
    EXPECT_GT(large.proof_ms, small.proof_ms * 8.0);
}

TEST_F(OldProtocolTest, GpuBaselineFasterThanCpuBaseline)
{
    Rng rng(13);
    LibsnarkLikeCpu cpu(10);
    BellpersonLikeGpu gpu(dev_);
    auto cpu_result = cpu.run(1, 16, rng);
    auto gpu_result = gpu.run(1, 16, rng);
    EXPECT_LT(gpu_result.proof_ms, cpu_result.proof_ms);
}

TEST_F(OldProtocolTest, GpuBaselineDoesNotBatchPipeline)
{
    // Bellperson proves serially: throughput ~ 1/latency.
    Rng rng(14);
    BellpersonLikeGpu gpu(dev_);
    auto result = gpu.run(8, 14, rng);
    double serial_throughput = 1.0 / result.stats.first_latency_ms;
    EXPECT_NEAR(result.stats.throughput_per_ms, serial_throughput,
                serial_throughput * 0.25);
}

TEST_F(OldProtocolTest, PipelinedSystemBeatsOldProtocolGpu)
{
    // The headline Table 7/8 comparison at matched scale.
    Rng rng(15);
    SystemOptions opt;
    opt.functional = 0;
    auto ours = PipelinedZkpSystem(dev_, opt).run(128, 18, rng);
    auto bell = BellpersonLikeGpu(dev_).run(4, 18, rng);
    EXPECT_GT(ours.stats.throughput_per_ms /
                  bell.stats.throughput_per_ms,
              50.0);
}

TEST_F(OldProtocolTest, MemoryFootprintMuchSmallerThanBellperson)
{
    // Table 10's shape.
    Rng rng(16);
    SystemOptions opt;
    opt.functional = 0;
    auto ours = PipelinedZkpSystem(dev_, opt).run(16, 18, rng);
    auto bell = BellpersonLikeGpu(dev_).run(2, 18, rng);
    EXPECT_LT(ours.stats.peak_device_bytes,
              bell.stats.peak_device_bytes / 4);
}

} // namespace
} // namespace bzk
