// Kill/restart crash matrix for the durable proof service: processing
// is killed at every ProveStage boundary of every task (a simulated
// power cut between pipeline stages), the service is restarted on the
// same journal directory, replay re-submits the unfinished tasks, and
// every admitted task must end with exactly one proof whose bytes are
// bit-identical to the proof of an uninterrupted run. Also composes
// the kill points with the GPU-sim fault injector: degraded devices
// change the simulated schedule, never the proof bytes.
//
// Labeled `slow` in ctest: the matrix re-proves real (small) instances
// under every kill point, which is minutes under sanitizers.

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include <unistd.h>

#include "core/DurableService.h"
#include "gpusim/Device.h"
#include "gpusim/FaultInjector.h"
#include "journal/Journal.h"
#include "obs/Metrics.h"

using namespace bzk;

namespace {

struct TempDir
{
    std::string path;

    TempDir()
    {
        char tmpl[] = "/tmp/bzk_crash_XXXXXX";
        path = ::mkdtemp(tmpl);
    }

    ~TempDir()
    {
        for (uint64_t i = 1; i <= 64; ++i)
            ::unlink(
                journal::Journal::segmentPath(path, i).c_str());
        ::rmdir(path.c_str());
    }
};

/** The workload every scenario runs: mixed sizes and priorities. */
std::vector<DurableTaskSpec>
matrixTasks()
{
    return {
        {.id = 101, .n_vars = 8, .seed = 77, .priority = 0},
        {.id = 102, .n_vars = 9, .seed = 77, .priority = 2},
        {.id = 103, .n_vars = 8, .seed = 77, .priority = 1},
    };
}

/** A batch mixing both protocol kinds, interleaved by id. */
std::vector<DurableTaskSpec>
mixedKindTasks()
{
    return {
        {.id = 201,
         .n_vars = 8,
         .seed = 77,
         .priority = 0,
         .kind = sched::ProtocolKind::TableCommit},
        {.id = 202,
         .n_vars = 8,
         .seed = 77,
         .priority = 2,
         .kind = sched::ProtocolKind::HighDegreeGate},
        {.id = 203,
         .n_vars = 9,
         .seed = 77,
         .priority = 0,
         .kind = sched::ProtocolKind::HighDegreeGate},
        {.id = 204,
         .n_vars = 9,
         .seed = 77,
         .priority = 1,
         .kind = sched::ProtocolKind::TableCommit},
    };
}

constexpr ProveStage kStages[] = {ProveStage::Encode,
                                  ProveStage::Merkle,
                                  ProveStage::FiatShamir,
                                  ProveStage::Sumcheck};

const char *
stageName(ProveStage stage)
{
    switch (stage) {
      case ProveStage::Encode:
        return "encode";
      case ProveStage::Merkle:
        return "merkle";
      case ProveStage::FiatShamir:
        return "fiat-shamir";
      case ProveStage::Sumcheck:
        return "sumcheck";
    }
    return "?";
}

/** Uninterrupted run: the reference proof bytes per task. */
std::map<uint64_t, std::vector<uint8_t>>
baselineProofs()
{
    static std::map<uint64_t, std::vector<uint8_t>> cached = [] {
        TempDir dir;
        gpusim::Device dev(gpusim::DeviceSpec::gh200());
        DurableProofService service(dev, {dir.path});
        for (const auto &spec : matrixTasks())
            EXPECT_TRUE(service.submit(spec));
        EXPECT_EQ(service.processAll(), matrixTasks().size());
        EXPECT_TRUE(service.verifyAll());
        std::map<uint64_t, std::vector<uint8_t>> proofs;
        for (const auto &[id, completion] : service.proofs())
            proofs[id] = completion.proof;
        return proofs;
    }();
    return cached;
}

} // namespace

TEST(CrashMatrix, EveryStageOfEveryTaskRecoversBitIdentically)
{
    auto baseline = baselineProofs();
    ASSERT_EQ(baseline.size(), matrixTasks().size());

    for (const auto &victim : matrixTasks()) {
        for (ProveStage stage : kStages) {
            SCOPED_TRACE(std::string("kill task ") +
                         std::to_string(victim.id) + " at " +
                         stageName(stage));
            TempDir dir;
            gpusim::Device dev(gpusim::DeviceSpec::gh200());
            size_t completed_before_crash = 0;
            {
                DurableProofService service(dev, {dir.path});
                for (const auto &spec : matrixTasks())
                    ASSERT_TRUE(service.submit(spec));
                completed_before_crash = service.processAll(
                    [&](uint64_t task_id, ProveStage at) {
                        return !(task_id == victim.id &&
                                 at == stage);
                    });
                // The victim dies mid-prove, so it and everything
                // after it in process order stay pending.
                EXPECT_LT(completed_before_crash,
                          matrixTasks().size());
                EXPECT_EQ(service.pendingCount(),
                          matrixTasks().size() -
                              completed_before_crash);
                // The service is destroyed here without any shutdown
                // protocol: the journal is all that survives.
            }

            obs::MetricsRegistry metrics;
            DurableProofService restarted(dev, {dir.path}, {},
                                          &metrics);
            EXPECT_EQ(restarted.recovery().proofs_restored,
                      completed_before_crash);
            EXPECT_EQ(restarted.recovery().tasks_resubmitted,
                      matrixTasks().size() - completed_before_crash);
            EXPECT_EQ(restarted.recovery().torn_records, 0u);
            EXPECT_EQ(restarted.processAll(),
                      matrixTasks().size() - completed_before_crash);
            EXPECT_TRUE(restarted.verifyAll());

            // Exactly one proof per admitted task, and each is
            // bit-identical to the uninterrupted run's proof.
            ASSERT_EQ(restarted.proofs().size(), baseline.size());
            for (const auto &[id, completion] : restarted.proofs())
                EXPECT_EQ(completion.proof, baseline.at(id))
                    << "task " << id;
            EXPECT_EQ(
                metrics.counter("bzk_journal_resubmitted_total")
                    .value(),
                static_cast<double>(matrixTasks().size() -
                                    completed_before_crash));
        }
    }
}

TEST(CrashMatrix, MixedProtocolBatchRecoversBitIdentically)
{
    // Uninterrupted reference run over the heterogeneous batch.
    std::map<uint64_t, std::vector<uint8_t>> baseline;
    {
        TempDir dir;
        gpusim::Device dev(gpusim::DeviceSpec::gh200());
        DurableProofService service(dev, {dir.path});
        for (const auto &spec : mixedKindTasks())
            ASSERT_TRUE(service.submit(spec));
        ASSERT_EQ(service.processAll(), mixedKindTasks().size());
        ASSERT_TRUE(service.verifyAll());
        for (const auto &[id, completion] : service.proofs())
            baseline[id] = completion.proof;
    }
    ASSERT_EQ(baseline.size(), mixedKindTasks().size());

    // Kill each task of each kind at every stage boundary; replay must
    // resubmit it with its journaled kind, so recovery re-proves the
    // same protocol and the bytes match the uninterrupted run.
    for (const auto &victim : mixedKindTasks()) {
        for (ProveStage stage : kStages) {
            SCOPED_TRACE(std::string("kill task ") +
                         std::to_string(victim.id) + " (" +
                         sched::protocolKindName(victim.kind) +
                         ") at " + stageName(stage));
            TempDir dir;
            gpusim::Device dev(gpusim::DeviceSpec::gh200());
            size_t completed_before_crash = 0;
            {
                DurableProofService service(dev, {dir.path});
                for (const auto &spec : mixedKindTasks())
                    ASSERT_TRUE(service.submit(spec));
                completed_before_crash = service.processAll(
                    [&](uint64_t task_id, ProveStage at) {
                        return !(task_id == victim.id &&
                                 at == stage);
                    });
                EXPECT_LT(completed_before_crash,
                          mixedKindTasks().size());
            }

            DurableProofService restarted(dev, {dir.path});
            EXPECT_EQ(restarted.recovery().tasks_resubmitted,
                      mixedKindTasks().size() -
                          completed_before_crash);
            EXPECT_EQ(restarted.processAll(),
                      mixedKindTasks().size() -
                          completed_before_crash);
            EXPECT_TRUE(restarted.verifyAll());
            ASSERT_EQ(restarted.proofs().size(), baseline.size());
            for (const auto &[id, completion] : restarted.proofs())
                EXPECT_EQ(completion.proof, baseline.at(id))
                    << "task " << id;
        }
    }
}

TEST(CrashMatrix, RepeatedCrashesAcrossRestartsStillConverge)
{
    auto baseline = baselineProofs();
    TempDir dir;
    gpusim::Device dev(gpusim::DeviceSpec::gh200());
    {
        DurableProofService service(dev, {dir.path});
        for (const auto &spec : matrixTasks())
            ASSERT_TRUE(service.submit(spec));
    }
    // No single incarnation survives to the end: the first dies before
    // finishing anything, the second after one task. Each delivered
    // proof is captured when its incarnation delivers it — segment
    // retirement is free to drop completion records once delivered, so
    // a later replay need not resurface them.
    std::map<uint64_t, std::vector<uint8_t>> delivered;
    auto capture = [&](const DurableProofService &service) {
        for (const auto &[id, completion] : service.proofs()) {
            if (delivered.count(id)) {
                EXPECT_EQ(delivered[id], completion.proof)
                    << "task " << id << " re-proved differently";
            }
            delivered[id] = completion.proof;
        }
    };
    for (size_t allowed : {size_t{0}, size_t{1}}) {
        DurableProofService service(dev, {dir.path});
        size_t started = 0;
        uint64_t current = 0;
        size_t completed = service.processAll(
            [&](uint64_t task_id, ProveStage stage) {
                if (task_id != current) {
                    current = task_id;
                    ++started;
                }
                return !(started > allowed &&
                         stage == ProveStage::Encode);
            });
        EXPECT_EQ(completed, allowed);
        EXPECT_GT(service.pendingCount(), 0u);
        capture(service);
    }

    DurableProofService final_run(dev, {dir.path});
    final_run.processAll();
    EXPECT_EQ(final_run.pendingCount(), 0u);
    capture(final_run);

    // Exactly one proof per admitted task, every one bit-identical to
    // the uninterrupted run, no matter which incarnation produced it.
    ASSERT_EQ(delivered.size(), baseline.size());
    for (const auto &[id, proof] : delivered)
        EXPECT_EQ(proof, baseline.at(id)) << "task " << id;
}

TEST(CrashMatrix, DoubleReplayIsIdempotent)
{
    TempDir dir;
    gpusim::Device dev(gpusim::DeviceSpec::gh200());
    {
        DurableProofService service(dev, {dir.path});
        for (const auto &spec : matrixTasks())
            ASSERT_TRUE(service.submit(spec));
        service.processAll([](uint64_t, ProveStage) { return false; });
    }
    // Two replays with no processing in between: the pending set must
    // not grow — replay is at-least-once, proving is exactly-once.
    {
        DurableProofService service(dev, {dir.path});
        EXPECT_EQ(service.pendingCount(), matrixTasks().size());
    }
    DurableProofService service(dev, {dir.path});
    EXPECT_EQ(service.pendingCount(), matrixTasks().size());
    EXPECT_EQ(service.processAll(), matrixTasks().size());
    EXPECT_TRUE(service.verifyAll());
}

TEST(CrashMatrix, FaultInjectedDeviceChangesScheduleNotProofs)
{
    auto baseline = baselineProofs();
    TempDir dir;
    // A degraded device: transfer stalls and failed lanes throughout.
    gpusim::FaultInjector injector(
        gpusim::FaultPlan::random(/*seed=*/9, /*horizon=*/256,
                                  /*intensity=*/0.8),
        /*seed=*/9);
    gpusim::Device dev(gpusim::DeviceSpec::v100());
    dev.setFaultInjector(&injector);

    {
        DurableProofService service(dev, {dir.path});
        for (const auto &spec : matrixTasks())
            ASSERT_TRUE(service.submit(spec));
        // Kill the highest-priority task at the Merkle boundary while
        // the device is also faulted.
        service.processAll([](uint64_t task_id, ProveStage stage) {
            return !(task_id == 102 &&
                     stage == ProveStage::Merkle);
        });
    }

    DurableProofService restarted(dev, {dir.path});
    // Recovery re-submission runs through the pipeline scheduler on
    // the faulted device: the accounting must still cover every
    // pending task (faults degrade, they do not drop work).
    auto schedule = restarted.scheduleAccounting();
    EXPECT_EQ(schedule.tasks.size(), restarted.pendingCount());
    restarted.processAll();
    EXPECT_TRUE(restarted.verifyAll());
    ASSERT_EQ(restarted.proofs().size(), baseline.size());
    for (const auto &[id, completion] : restarted.proofs())
        EXPECT_EQ(completion.proof, baseline.at(id)) << "task " << id;
}
