/**
 * @file
 * Tests for the GPU discrete-event simulator: stream ordering, lane
 * capacity scheduling, copy-engine overlap, memory accounting and
 * utilization traces.
 */

#include <gtest/gtest.h>

#include "gpusim/Calibration.h"
#include "gpusim/Device.h"

namespace bzk::gpusim {
namespace {

DeviceSpec
tinySpec()
{
    DeviceSpec s;
    s.name = "tiny";
    s.cuda_cores = 64;
    s.clock_ghz = 1.0; // 1e6 cycles per ms
    s.mem_bw_gbps = 100.0;
    s.link_gbps = 10.0;
    s.link_name = "test-link";
    s.device_mem_bytes = 1 << 20;
    return s;
}

KernelDesc
simpleKernel(double lanes, uint64_t threads, double cycles)
{
    KernelDesc k;
    k.name = "k";
    k.lanes = lanes;
    k.threads = threads;
    k.cycles_per_thread = cycles;
    return k;
}

TEST(DeviceSpec, PresetsPopulated)
{
    for (const auto &spec : DeviceSpec::allPresets()) {
        EXPECT_FALSE(spec.name.empty());
        EXPECT_GT(spec.cuda_cores, 0u);
        EXPECT_GT(spec.clock_ghz, 0.0);
        EXPECT_GT(spec.mem_bw_gbps, 0.0);
        EXPECT_GT(spec.link_gbps, 0.0);
        EXPECT_GT(spec.device_mem_bytes, 0u);
    }
}

TEST(DeviceSpec, PaperCoreCounts)
{
    // The paper's resource-allocation example relies on V100 = 5120
    // cores, and Figure 9 on 3090Ti = 10752.
    EXPECT_EQ(DeviceSpec::v100().cuda_cores, 5120u);
    EXPECT_EQ(DeviceSpec::rtx3090ti().cuda_cores, 10752u);
}

TEST(Device, KernelDurationComputeBound)
{
    Device dev(tinySpec());
    // 64 threads, 1e6 cycles each on 64 lanes at 1e6 cycles/ms -> 1 ms.
    double d = dev.kernelDurationMs(simpleKernel(64, 64, 1e6));
    EXPECT_NEAR(d, 1.0 + kKernelLaunchMs, 1e-9);
}

TEST(Device, KernelWaves)
{
    Device dev(tinySpec());
    // 128 threads on 64 lanes -> 2 waves.
    double d = dev.kernelDurationMs(simpleKernel(64, 128, 1e6));
    EXPECT_NEAR(d, 2.0 + kKernelLaunchMs, 1e-9);
}

TEST(Device, KernelMemoryBound)
{
    Device dev(tinySpec());
    KernelDesc k = simpleKernel(64, 64, 1.0);
    k.mem_bytes = 100'000'000; // at 100 GB/s (=1e8 B/ms) -> 1 ms
    double d = dev.kernelDurationMs(k);
    EXPECT_NEAR(d, 1.0 + kKernelLaunchMs, 1e-9);
}

TEST(Device, StreamSerializesOps)
{
    Device dev(tinySpec());
    StreamId s = dev.createStream();
    OpId a = dev.launchKernel(s, simpleKernel(16, 16, 1e6));
    OpId b = dev.launchKernel(s, simpleKernel(16, 16, 1e6));
    EXPECT_GE(dev.opStart(b), dev.opEnd(a));
}

TEST(Device, IndependentStreamsOverlap)
{
    Device dev(tinySpec());
    StreamId s1 = dev.createStream();
    StreamId s2 = dev.createStream();
    OpId a = dev.launchKernel(s1, simpleKernel(16, 16, 1e6));
    OpId b = dev.launchKernel(s2, simpleKernel(16, 16, 1e6));
    // 16 + 16 lanes fit in 64: both start at 0.
    EXPECT_DOUBLE_EQ(dev.opStart(a), 0.0);
    EXPECT_DOUBLE_EQ(dev.opStart(b), 0.0);
}

TEST(Device, LaneCapacityQueues)
{
    Device dev(tinySpec());
    StreamId s1 = dev.createStream();
    StreamId s2 = dev.createStream();
    OpId a = dev.launchKernel(s1, simpleKernel(64, 64, 1e6));
    OpId b = dev.launchKernel(s2, simpleKernel(64, 64, 1e6));
    // Both want all 64 lanes: the second must wait.
    EXPECT_GE(dev.opStart(b), dev.opEnd(a) - 1e-9);
}

TEST(Device, PartialOverlapWhenLanesFree)
{
    Device dev(tinySpec());
    StreamId s1 = dev.createStream();
    StreamId s2 = dev.createStream();
    // Reservations are warp-granular (32 lanes), so 32 + 32 fills the
    // 64-lane device exactly and both kernels co-run from time zero.
    dev.launchKernel(s1, simpleKernel(32, 32, 1e6));
    OpId b = dev.launchKernel(s2, simpleKernel(32, 32, 1e6));
    EXPECT_DOUBLE_EQ(dev.opStart(b), 0.0);
}

TEST(Device, ExplicitDependencyHonored)
{
    Device dev(tinySpec());
    StreamId s1 = dev.createStream();
    StreamId s2 = dev.createStream();
    OpId a = dev.launchKernel(s1, simpleKernel(16, 16, 1e6));
    OpId b = dev.launchKernel(s2, simpleKernel(16, 16, 1e6), a);
    EXPECT_GE(dev.opStart(b), dev.opEnd(a));
}

TEST(Device, CopyEngineSerializesSameDirection)
{
    Device dev(tinySpec());
    StreamId s1 = dev.createStream();
    StreamId s2 = dev.createStream();
    OpId a = dev.copyH2D(s1, 10'000'000); // 1 ms at 10 GB/s * 0.88
    OpId b = dev.copyH2D(s2, 10'000'000);
    EXPECT_GE(dev.opStart(b), dev.opEnd(a) - 1e-9);
}

TEST(Device, OppositeCopyDirectionsOverlap)
{
    Device dev(tinySpec());
    StreamId s1 = dev.createStream();
    StreamId s2 = dev.createStream();
    OpId a = dev.copyH2D(s1, 10'000'000);
    OpId b = dev.copyD2H(s2, 10'000'000);
    EXPECT_DOUBLE_EQ(dev.opStart(a), 0.0);
    EXPECT_DOUBLE_EQ(dev.opStart(b), 0.0);
}

TEST(Device, CopyOverlapsCompute)
{
    // The multi-stream claim of the paper: copies and kernels overlap.
    Device dev(tinySpec());
    StreamId sk = dev.createStream();
    StreamId sc = dev.createStream();
    OpId k = dev.launchKernel(sk, simpleKernel(64, 64, 1e6));
    OpId c = dev.copyH2D(sc, 8'800'000); // ~1 ms
    EXPECT_DOUBLE_EQ(dev.opStart(k), 0.0);
    EXPECT_DOUBLE_EQ(dev.opStart(c), 0.0);
    EXPECT_LT(dev.now(), 2.0); // overlapped, not serialized
}

TEST(Device, MemoryAccounting)
{
    Device dev(tinySpec());
    int64_t h1 = dev.alloc(1000);
    int64_t h2 = dev.alloc(500);
    EXPECT_EQ(dev.liveMemory(), 1500u);
    EXPECT_EQ(dev.peakMemory(), 1500u);
    dev.free(h1);
    EXPECT_EQ(dev.liveMemory(), 500u);
    EXPECT_EQ(dev.peakMemory(), 1500u);
    dev.resetMemoryPeak();
    EXPECT_EQ(dev.peakMemory(), 500u);
    dev.free(h2);
    EXPECT_EQ(dev.liveMemory(), 0u);
}

TEST(Device, UtilizationFullKernel)
{
    Device dev(tinySpec());
    StreamId s = dev.createStream();
    dev.launchKernel(s, simpleKernel(64, 64, 1e6));
    auto trace = dev.utilizationTrace(0.1, 1.0);
    ASSERT_FALSE(trace.empty());
    // Nearly all bins should be ~100% busy.
    for (size_t i = 0; i + 1 < trace.size(); ++i)
        EXPECT_GT(trace[i].utilization, 0.9) << "bin " << i;
}

TEST(Device, UtilizationRespectsProfile)
{
    Device dev(tinySpec());
    StreamId s = dev.createStream();
    KernelDesc k;
    k.name = "decay";
    k.lanes = 64;
    // Half the time 64 active lanes, half the time 8.
    k.profile = {{5e5, 64.0}, {5e5, 8.0}};
    dev.launchKernel(s, k);
    auto trace = dev.utilizationTrace(0.25, 1.0);
    ASSERT_EQ(trace.size(), 4u);
    EXPECT_GT(trace[0].utilization, 0.9);
    EXPECT_LT(trace[3].utilization, 0.2);
}

TEST(Device, BusyLaneMsAccumulates)
{
    Device dev(tinySpec());
    StreamId s = dev.createStream();
    dev.launchKernel(s, simpleKernel(64, 64, 1e6));
    // 64 lanes busy for ~1 ms.
    EXPECT_NEAR(dev.busyLaneMs(), 64.0 * (1.0 + kKernelLaunchMs), 0.5);
}

TEST(Device, ResetTimelineClearsClock)
{
    Device dev(tinySpec());
    StreamId s = dev.createStream();
    dev.launchKernel(s, simpleKernel(64, 64, 1e6));
    EXPECT_GT(dev.now(), 0.0);
    dev.resetTimeline();
    EXPECT_DOUBLE_EQ(dev.now(), 0.0);
    EXPECT_DOUBLE_EQ(dev.streamTime(s), 0.0);
    EXPECT_TRUE(dev.ops().empty());
}

TEST(Device, ManyKernelsBackToBackKeepLedgerConsistent)
{
    Device dev(tinySpec());
    StreamId s1 = dev.createStream();
    StreamId s2 = dev.createStream();
    for (int i = 0; i < 200; ++i) {
        dev.launchKernel(i % 2 ? s1 : s2,
                         simpleKernel(40, 40, 1e4));
    }
    // 40+40 > 64, so ops alternate; end time ~ 200 * 0.01 ms serial-ish.
    EXPECT_GT(dev.now(), 200 * 0.01 * 0.9);
}

TEST(Device, ChromeTraceContainsAllOps)
{
    Device dev(tinySpec());
    StreamId s1 = dev.createStream();
    StreamId s2 = dev.createStream();
    dev.launchKernel(s1, simpleKernel(16, 16, 1e5));
    dev.copyH2D(s2, 1000);
    dev.copyD2H(s2, 1000);
    std::string json = dev.chromeTraceJson();
    EXPECT_NE(json.find("\"cat\":\"kernel\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"h2d\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"d2h\""), std::string::npos);
    EXPECT_EQ(json.front(), '[');
    EXPECT_EQ(json.back(), ']');
}

TEST(Device, OpRecordsCarryStream)
{
    Device dev(tinySpec());
    StreamId s1 = dev.createStream();
    StreamId s2 = dev.createStream();
    dev.launchKernel(s1, simpleKernel(16, 16, 1e5));
    dev.launchKernel(s2, simpleKernel(16, 16, 1e5));
    ASSERT_EQ(dev.ops().size(), 2u);
    EXPECT_EQ(dev.ops()[0].stream, s1);
    EXPECT_EQ(dev.ops()[1].stream, s2);
}

TEST(Device, ZeroByteCopyIsInstant)
{
    Device dev(tinySpec());
    StreamId s = dev.createStream();
    OpId op = dev.copyH2D(s, 0);
    EXPECT_DOUBLE_EQ(dev.opStart(op), dev.opEnd(op));
}

TEST(Device, EmptyTimelineTraceIsEmpty)
{
    Device dev(tinySpec());
    EXPECT_TRUE(dev.utilizationTrace(1.0).empty());
    EXPECT_DOUBLE_EQ(dev.now(), 0.0);
    EXPECT_DOUBLE_EQ(dev.busyLaneMs(), 0.0);
}

TEST(Device, ProfileDurationIgnoresThreadFields)
{
    // When a profile is given, threads/cycles_per_thread are ignored.
    Device dev(tinySpec());
    KernelDesc k;
    k.name = "p";
    k.lanes = 64;
    k.threads = 999999;
    k.cycles_per_thread = 1e9;
    k.profile = {{1e6, 64.0}};
    EXPECT_NEAR(dev.kernelDurationMs(k), 1.0 + kKernelLaunchMs, 1e-9);
}

TEST(Device, SingleThreadKernelRoundsToWarp)
{
    Device dev(tinySpec());
    StreamId s = dev.createStream();
    dev.launchKernel(s, simpleKernel(64, 1, 1e5));
    EXPECT_DOUBLE_EQ(dev.ops()[0].lanes, 32.0); // one warp reserved
}

TEST(Device, CopyDurationMatchesLinkBandwidth)
{
    Device dev(tinySpec());
    double ms = dev.copyDurationMs(10'000'000);
    // 10 MB at 8.8 GB/s effective = ~1.136 ms.
    EXPECT_NEAR(ms, 10.0 / 8.8, 1e-6);
}

} // namespace
} // namespace bzk::gpusim
