// Durable task journal: segment format, WAL append/replay round trips,
// rotation and retirement, and the corruption-injection matrix — a
// truncated tail, a flipped payload bit, and a zeroed segment header
// must each stop replay cleanly at the last valid record with an exact
// torn offset, never crash, and never replay bytes at or past the tear.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

#include "journal/Crc32.h"
#include "journal/Journal.h"
#include "journal/Record.h"
#include "journal/Replay.h"
#include "obs/Metrics.h"

using namespace bzk;
using namespace bzk::journal;

namespace {

/** Fresh journal directory under /tmp, removed on destruction. */
struct TempDir
{
    std::string path;

    TempDir()
    {
        char tmpl[] = "/tmp/bzk_journal_XXXXXX";
        path = ::mkdtemp(tmpl);
    }

    ~TempDir()
    {
        // Segments only; the journal never creates subdirectories.
        for (uint64_t i = 1; i <= 64; ++i)
            ::unlink(Journal::segmentPath(path, i).c_str());
        ::rmdir(path.c_str());
    }
};

TaskRecord
task(uint64_t id, uint32_t n_vars = 10, int32_t priority = 0)
{
    TaskRecord t;
    t.task_id = id;
    t.n_vars = n_vars;
    t.priority = priority;
    t.seed = 2024;
    return t;
}

CompletionRecord
completion(uint64_t id, std::vector<uint8_t> proof = {})
{
    CompletionRecord c;
    c.task_id = id;
    c.n_vars = 10;
    c.seed = 2024;
    c.proof = std::move(proof);
    return c;
}

std::vector<uint8_t>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << path;
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

void
writeFile(const std::string &path, const std::vector<uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

bool
fileExists(const std::string &path)
{
    struct stat st = {};
    return ::stat(path.c_str(), &st) == 0;
}

/** Task record frame size on disk: 8-byte frame + 27-byte v2 body. */
constexpr size_t kTaskFrameBytes = kRecordFrameBytes + 27;

} // namespace

TEST(Crc32, MatchesIeeeCheckValue)
{
    // The standard CRC-32 check value: crc32("123456789").
    const uint8_t digits[] = {'1', '2', '3', '4', '5',
                              '6', '7', '8', '9'};
    EXPECT_EQ(crc32(digits), 0xCBF43926u);
    EXPECT_EQ(crc32(std::span<const uint8_t>{}), 0u);
}

TEST(Crc32, DetectsSingleBitFlips)
{
    std::vector<uint8_t> data(64);
    for (size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<uint8_t>(i * 37);
    uint32_t clean = crc32(data);
    for (size_t bit = 0; bit < data.size() * 8; bit += 97) {
        auto flipped = data;
        flipped[bit / 8] ^= uint8_t{1} << (bit % 8);
        EXPECT_NE(crc32(flipped), clean) << "bit " << bit;
    }
}

TEST(Journal, AppendThenReplayRoundTrip)
{
    TempDir dir;
    {
        Journal journal({dir.path});
        journal.append(task(1));
        journal.append(task(2, 12, 5));
        journal.append(task(3));
        journal.append(completion(1, {0xAA, 0xBB}));
        journal.append(completion(2));
    }
    auto replayed = replayJournal(dir.path);
    EXPECT_FALSE(replayed.torn.torn);
    EXPECT_EQ(replayed.records_replayed, 5u);
    EXPECT_EQ(replayed.task_records, 3u);
    EXPECT_EQ(replayed.completion_records, 2u);
    ASSERT_EQ(replayed.pending.size(), 1u);
    EXPECT_EQ(replayed.pending[0], task(3));
    ASSERT_EQ(replayed.completions.count(1), 1u);
    EXPECT_EQ(replayed.completions.at(1).proof,
              (std::vector<uint8_t>{0xAA, 0xBB}));
}

TEST(Journal, ReplayOfMissingDirectoryIsEmpty)
{
    auto replayed = replayJournal("/tmp/bzk_journal_does_not_exist");
    EXPECT_FALSE(replayed.torn.torn);
    EXPECT_EQ(replayed.records_replayed, 0u);
    EXPECT_TRUE(replayed.pending.empty());
    EXPECT_TRUE(replayed.completions.empty());
}

TEST(Journal, RestartNeverAppendsToOldSegments)
{
    TempDir dir;
    uint64_t first_index = 0;
    {
        Journal journal({dir.path});
        first_index = journal.currentSegmentIndex();
        journal.append(task(1));
    }
    auto before = readFile(Journal::segmentPath(dir.path, first_index));
    {
        Journal journal({dir.path});
        EXPECT_GT(journal.currentSegmentIndex(), first_index);
        journal.append(task(2));
    }
    // The old segment's bytes are untouched by the new writer — its
    // (possibly torn) tail is never appended to.
    EXPECT_EQ(readFile(Journal::segmentPath(dir.path, first_index)),
              before);
    auto replayed = replayJournal(dir.path);
    EXPECT_EQ(replayed.pending.size(), 2u);
    EXPECT_EQ(replayed.segments.size(), 2u);
}

TEST(Journal, RotatesSegmentsPastSizeLimit)
{
    TempDir dir;
    JournalOptions opt{dir.path};
    opt.segment_bytes = 64; // every task append crosses the limit
    Journal journal(opt);
    uint64_t first = journal.currentSegmentIndex();
    journal.append(task(1));
    journal.append(task(2));
    EXPECT_GT(journal.currentSegmentIndex(), first);
    EXPECT_GE(journal.stats().segments_created, 2u);
    auto replayed = replayJournal(dir.path);
    EXPECT_FALSE(replayed.torn.torn);
    EXPECT_EQ(replayed.pending.size(), 2u);
}

TEST(Journal, RetiresFullyAckedPrefixSegments)
{
    TempDir dir;
    JournalOptions opt{dir.path};
    opt.segment_bytes = 1; // rotate after every record
    Journal journal(opt);
    uint64_t first = journal.currentSegmentIndex();
    journal.append(task(1));
    journal.append(task(2));
    ASSERT_TRUE(fileExists(Journal::segmentPath(dir.path, first)));
    journal.append(completion(1));
    // Segment `first` has no open tasks left; it must be unlinked.
    EXPECT_FALSE(fileExists(Journal::segmentPath(dir.path, first)));
    EXPECT_GE(journal.stats().segments_retired, 1u);
    // Task 2 is still recoverable from the remaining segments.
    auto replayed = replayJournal(dir.path);
    ASSERT_EQ(replayed.pending.size(), 1u);
    EXPECT_EQ(replayed.pending[0].task_id, 2u);
}

TEST(Journal, UnackedSegmentBlocksRetirementBehindIt)
{
    TempDir dir;
    JournalOptions opt{dir.path};
    opt.segment_bytes = 1; // rotate after every record
    Journal journal(opt);
    uint64_t first = journal.currentSegmentIndex();
    journal.append(task(1)); // stays open forever
    journal.append(task(2)); // its own, later, segment
    journal.append(completion(2));
    // Retirement is prefix-only: the fully-acked later segment must
    // not be dropped while the older segment still has open work.
    EXPECT_TRUE(fileExists(Journal::segmentPath(dir.path, first)));
    EXPECT_EQ(journal.stats().segments_retired, 0u);
}

TEST(Journal, AdoptReplayedRetiresAcrossRestart)
{
    TempDir dir;
    uint64_t first = 0;
    {
        Journal journal({dir.path});
        first = journal.currentSegmentIndex();
        journal.append(task(1));
    }
    auto replayed = replayJournal(dir.path);
    Journal journal({dir.path});
    journal.adoptReplayed(replayed);
    ASSERT_TRUE(fileExists(Journal::segmentPath(dir.path, first)));
    // Acking the pre-restart task retires the pre-restart segment.
    journal.append(completion(1));
    EXPECT_FALSE(fileExists(Journal::segmentPath(dir.path, first)));
}

TEST(Journal, DuplicateTaskRecordsAreCountedOnce)
{
    TempDir dir;
    {
        Journal journal({dir.path});
        journal.append(task(7));
        journal.append(task(7));
        journal.append(task(7));
    }
    auto replayed = replayJournal(dir.path);
    EXPECT_EQ(replayed.duplicate_tasks, 2u);
    EXPECT_EQ(replayed.pending.size(), 1u);
}

TEST(Journal, WriterExportsMetrics)
{
    TempDir dir;
    obs::MetricsRegistry metrics;
    {
        Journal journal({dir.path}, &metrics);
        journal.append(task(1));
        journal.append(completion(1));
    }
    EXPECT_EQ(metrics.counter("bzk_journal_appended_total").value(),
              2.0);
    EXPECT_EQ(metrics.counter("bzk_journal_task_appends_total").value(),
              1.0);
    EXPECT_EQ(
        metrics.counter("bzk_journal_completion_appends_total").value(),
        1.0);
    EXPECT_GE(metrics.counter("bzk_journal_fsyncs_total").value(), 2.0);
    EXPECT_GT(metrics.counter("bzk_journal_bytes_total").value(), 0.0);

    obs::MetricsRegistry replay_metrics;
    replayJournal(dir.path, &replay_metrics);
    EXPECT_EQ(replay_metrics.counter("bzk_journal_replayed_records_total")
                  .value(),
              2.0);
    EXPECT_EQ(
        replay_metrics.counter("bzk_journal_torn_records_total").value(),
        0.0);
    EXPECT_TRUE(replay_metrics.has("bzk_journal_replay_scan_ms"));
}

// --- corruption injection -------------------------------------------

TEST(JournalCorruption, TruncatedTailStopsAtLastValidRecord)
{
    TempDir dir;
    uint64_t index = 0;
    {
        Journal journal({dir.path});
        index = journal.currentSegmentIndex();
        journal.append(task(1));
        journal.append(task(2));
        journal.append(task(3));
    }
    std::string path = Journal::segmentPath(dir.path, index);
    auto bytes = readFile(path);
    ASSERT_EQ(bytes.size(), kSegmentHeaderBytes + 3 * kTaskFrameBytes);
    // Crash mid-append of the third record: cut it in half.
    bytes.resize(bytes.size() - kTaskFrameBytes / 2);
    writeFile(path, bytes);

    auto replayed = replayJournal(dir.path);
    EXPECT_EQ(replayed.records_replayed, 2u);
    ASSERT_EQ(replayed.pending.size(), 2u);
    EXPECT_EQ(replayed.pending[0].task_id, 1u);
    EXPECT_EQ(replayed.pending[1].task_id, 2u);
    ASSERT_TRUE(replayed.torn.torn);
    EXPECT_EQ(replayed.torn.segment_index, index);
    EXPECT_EQ(replayed.torn.offset,
              kSegmentHeaderBytes + 2 * kTaskFrameBytes);
    EXPECT_EQ(replayed.torn.reason, "torn tail");
    EXPECT_EQ(replayed.torn_records, 1u);
}

TEST(JournalCorruption, TruncationInsideFrameHeaderIsTornFrame)
{
    TempDir dir;
    uint64_t index = 0;
    {
        Journal journal({dir.path});
        index = journal.currentSegmentIndex();
        journal.append(task(1));
        journal.append(task(2));
    }
    std::string path = Journal::segmentPath(dir.path, index);
    auto bytes = readFile(path);
    // Leave only 3 bytes of the second record's 8-byte frame header.
    bytes.resize(kSegmentHeaderBytes + kTaskFrameBytes + 3);
    writeFile(path, bytes);

    auto replayed = replayJournal(dir.path);
    EXPECT_EQ(replayed.records_replayed, 1u);
    ASSERT_TRUE(replayed.torn.torn);
    EXPECT_EQ(replayed.torn.offset,
              kSegmentHeaderBytes + kTaskFrameBytes);
    EXPECT_EQ(replayed.torn.reason, "torn frame");
}

TEST(JournalCorruption, FlippedPayloadBitFailsCrc)
{
    TempDir dir;
    uint64_t index = 0;
    {
        Journal journal({dir.path});
        index = journal.currentSegmentIndex();
        journal.append(task(1));
        journal.append(task(2));
        journal.append(task(3));
    }
    std::string path = Journal::segmentPath(dir.path, index);
    auto bytes = readFile(path);
    // Flip one bit inside the second record's CRC'd body (its seed).
    size_t second_body =
        kSegmentHeaderBytes + kTaskFrameBytes + kRecordFrameBytes;
    bytes[second_body + 20] ^= 0x10;
    writeFile(path, bytes);

    auto replayed = replayJournal(dir.path);
    // Replay keeps the record before the flip and nothing after it —
    // the scan stops globally, it does not resynchronize.
    EXPECT_EQ(replayed.records_replayed, 1u);
    ASSERT_EQ(replayed.pending.size(), 1u);
    EXPECT_EQ(replayed.pending[0].task_id, 1u);
    ASSERT_TRUE(replayed.torn.torn);
    EXPECT_EQ(replayed.torn.segment_index, index);
    EXPECT_EQ(replayed.torn.offset,
              kSegmentHeaderBytes + kTaskFrameBytes);
    EXPECT_EQ(replayed.torn.reason, "bad crc");
}

TEST(JournalCorruption, ZeroedSegmentHeaderStopsScan)
{
    TempDir dir;
    uint64_t first = 0;
    {
        Journal journal({dir.path});
        first = journal.currentSegmentIndex();
        journal.append(task(1));
        journal.append(completion(1));
    }
    {
        Journal journal({dir.path});
        journal.append(task(2));
    }
    // Zero the second segment's header; the first segment's records
    // must still replay, the scan must stop at the zeroed header.
    std::string path = Journal::segmentPath(dir.path, first + 1);
    auto bytes = readFile(path);
    std::fill(bytes.begin(), bytes.begin() + kSegmentHeaderBytes, 0);
    writeFile(path, bytes);

    auto replayed = replayJournal(dir.path);
    EXPECT_EQ(replayed.records_replayed, 2u);
    EXPECT_TRUE(replayed.pending.empty());
    ASSERT_TRUE(replayed.torn.torn);
    EXPECT_EQ(replayed.torn.segment_index, first + 1);
    EXPECT_EQ(replayed.torn.offset, 0u);
    EXPECT_EQ(replayed.torn.reason, "bad segment header");
}

TEST(JournalCorruption, HeaderIndexMismatchIsRejected)
{
    TempDir dir;
    uint64_t index = 0;
    {
        Journal journal({dir.path});
        index = journal.currentSegmentIndex();
        journal.append(task(1));
    }
    // A segment renamed to the wrong index (operator error) must not
    // replay under the forged position.
    std::string path = Journal::segmentPath(dir.path, index);
    auto bytes = readFile(path);
    ::unlink(path.c_str());
    writeFile(Journal::segmentPath(dir.path, index + 1), bytes);

    auto replayed = replayJournal(dir.path);
    EXPECT_EQ(replayed.records_replayed, 0u);
    ASSERT_TRUE(replayed.torn.torn);
    EXPECT_EQ(replayed.torn.reason, "bad segment header");
    ::unlink(Journal::segmentPath(dir.path, index + 1).c_str());
}

TEST(JournalCorruption, UnknownRecordTypeStopsScan)
{
    TempDir dir;
    uint64_t index = 0;
    {
        Journal journal({dir.path});
        index = journal.currentSegmentIndex();
        journal.append(task(1));
    }
    // Append a validly framed record of an unknown type: CRC passes,
    // the type gate must still stop the scan (forward compatibility).
    std::vector<uint8_t> body{0x7F, kJournalVersion, 0x00};
    auto frame = frameRecord(body);
    std::string path = Journal::segmentPath(dir.path, index);
    auto bytes = readFile(path);
    bytes.insert(bytes.end(), frame.begin(), frame.end());
    writeFile(path, bytes);

    auto replayed = replayJournal(dir.path);
    EXPECT_EQ(replayed.records_replayed, 1u);
    ASSERT_TRUE(replayed.torn.torn);
    EXPECT_EQ(replayed.torn.reason, "unknown record type");
    obs::MetricsRegistry metrics;
    replayJournal(dir.path, &metrics);
    EXPECT_EQ(metrics.counter("bzk_journal_torn_records_total").value(),
              1.0);
}
