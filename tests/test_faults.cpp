/**
 * @file
 * Tests for the deterministic fault-injection subsystem: plan
 * generation and parsing, injector schedule resolution, the pipelined
 * system's graceful degradation under lane failures, the Merkle root
 * re-check + retry path, and the zero-overhead guarantee of the
 * fault-free default path.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "core/PipelinedSystem.h"
#include "gpusim/Calibration.h"
#include "gpusim/Device.h"
#include "gpusim/FaultInjector.h"

namespace bzk {
namespace {

using gpusim::FaultEvent;
using gpusim::FaultInjector;
using gpusim::FaultKind;
using gpusim::FaultPlan;

TEST(FaultPlan, RandomIsDeterministic)
{
    auto a = FaultPlan::random(42, 200, 0.5);
    auto b = FaultPlan::random(42, 200, 0.5);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a.events, b.events);
    auto c = FaultPlan::random(43, 200, 0.5);
    EXPECT_NE(a.events, c.events);
}

TEST(FaultPlan, RandomRespectsHorizon)
{
    auto plan = FaultPlan::random(7, 128, 1.0);
    EXPECT_LE(plan.horizon(), 128u);
    for (const auto &e : plan.events) {
        EXPECT_LT(e.begin_cycle, e.end_cycle);
        switch (e.kind) {
          case FaultKind::TransferStall:
            EXPECT_GT(e.magnitude, 1.0);
            break;
          case FaultKind::LaneFailure:
            EXPECT_GT(e.magnitude, 0.0);
            EXPECT_LT(e.magnitude, 1.0);
            break;
          case FaultKind::MerkleCorruption:
            EXPECT_GE(e.magnitude, 1.0);
            break;
        }
    }
}

TEST(FaultPlan, EmptyWhenNoIntensity)
{
    EXPECT_TRUE(FaultPlan::random(1, 100, 0.0).empty());
    EXPECT_TRUE(FaultPlan::random(1, 0, 0.5).empty());
}

TEST(FaultPlan, ParsesExplicitSpec)
{
    auto plan =
        FaultPlan::parse("stall:2-6:3.5,lanes:10-20:0.25,corrupt:7:2,"
                         "corrupt:9");
    ASSERT_EQ(plan.events.size(), 4u);
    EXPECT_EQ(plan.events[0],
              (FaultEvent{FaultKind::TransferStall, 2, 6, 3.5}));
    EXPECT_EQ(plan.events[1],
              (FaultEvent{FaultKind::LaneFailure, 10, 20, 0.25}));
    EXPECT_EQ(plan.events[2],
              (FaultEvent{FaultKind::MerkleCorruption, 7, 8, 2.0}));
    EXPECT_EQ(plan.events[3],
              (FaultEvent{FaultKind::MerkleCorruption, 9, 10, 1.0}));
    EXPECT_EQ(plan.horizon(), 20u);
    EXPECT_FALSE(plan.describe().empty());
}

TEST(FaultInjectorTest, ResolvesScheduleByCycle)
{
    auto plan = FaultPlan::parse("stall:2-4:3.0,lanes:3-5:0.2,corrupt:3");
    FaultInjector inj(plan, 1);

    inj.beginCycle(0);
    EXPECT_DOUBLE_EQ(inj.transferStallMultiplier(), 1.0);
    EXPECT_DOUBLE_EQ(inj.failedLaneFraction(), 0.0);
    EXPECT_EQ(inj.corruptionBytes(), 0u);

    inj.beginCycle(2);
    EXPECT_DOUBLE_EQ(inj.transferStallMultiplier(), 3.0);
    EXPECT_DOUBLE_EQ(inj.failedLaneFraction(), 0.0);

    inj.beginCycle(3);
    EXPECT_DOUBLE_EQ(inj.transferStallMultiplier(), 3.0);
    EXPECT_DOUBLE_EQ(inj.failedLaneFraction(), 0.2);
    EXPECT_EQ(inj.corruptionBytes(), 1u);

    inj.beginCycle(4); // stall window is half-open
    EXPECT_DOUBLE_EQ(inj.transferStallMultiplier(), 1.0);
    EXPECT_DOUBLE_EQ(inj.failedLaneFraction(), 0.2);

    EXPECT_EQ(inj.stats().degraded_cycles, 2u);
}

TEST(FaultInjectorTest, OverlappingLaneFailuresClamp)
{
    FaultPlan plan;
    plan.events.push_back({FaultKind::LaneFailure, 0, 10, 0.6});
    plan.events.push_back({FaultKind::LaneFailure, 0, 10, 0.6});
    FaultInjector inj(plan, 1);
    inj.beginCycle(5);
    EXPECT_DOUBLE_EQ(inj.failedLaneFraction(), 0.95);
}

TEST(FaultInjectorTest, CorruptLayerIsDeterministicAndEffective)
{
    auto plan = FaultPlan::parse("corrupt:4:3");
    std::vector<uint8_t> clean(256);
    std::iota(clean.begin(), clean.end(), 0);

    FaultInjector a(plan, 99), b(plan, 99);
    auto da = clean, db = clean;
    a.beginCycle(4);
    b.beginCycle(4);
    EXPECT_TRUE(a.corruptLayer(da));
    EXPECT_TRUE(b.corruptLayer(db));
    EXPECT_NE(da, clean);   // bytes actually flipped
    EXPECT_EQ(da, db);      // ...at seed-determined positions

    // Off-schedule cycles leave the data alone.
    FaultInjector c(plan, 99);
    auto dc = clean;
    c.beginCycle(3);
    EXPECT_FALSE(c.corruptLayer(dc));
    EXPECT_EQ(dc, clean);
}

class SystemFaultsTest : public ::testing::Test
{
  protected:
    SystemRunResult
    run(const FaultPlan *plan, uint64_t seed = 2024,
        size_t functional = 0, gpusim::FaultStats *fault_stats = nullptr)
    {
        gpusim::Device dev(gpusim::DeviceSpec::v100());
        gpusim::FaultInjector inj(plan ? *plan : FaultPlan{}, seed);
        if (plan)
            dev.setFaultInjector(&inj);
        SystemOptions opt;
        opt.functional = functional;
        opt.seed = seed;
        Rng rng(seed);
        auto result =
            PipelinedZkpSystem(dev, opt).run(kBatch, kVars, rng);
        if (fault_stats)
            *fault_stats = inj.stats();
        return result;
    }

    static constexpr size_t kBatch = 48;
    static constexpr unsigned kVars = 10;
};

TEST_F(SystemFaultsTest, SamePlanSameSeedIsBitIdentical)
{
    auto plan = FaultPlan::parse(
        "stall:1-4:2.5,lanes:5-25:0.1,corrupt:8,corrupt:30:2");
    auto a = run(&plan, 7, /*functional=*/1);
    auto b = run(&plan, 7, /*functional=*/1);
    EXPECT_EQ(a.stats.total_ms, b.stats.total_ms);
    EXPECT_EQ(a.stats.throughput_per_ms, b.stats.throughput_per_ms);
    EXPECT_EQ(a.stats.first_latency_ms, b.stats.first_latency_ms);
    EXPECT_EQ(a.degraded_cycles, b.degraded_cycles);
    EXPECT_EQ(a.relocated_lane_fraction, b.relocated_lane_fraction);
    EXPECT_EQ(a.corrupt_detected, b.corrupt_detected);
    EXPECT_EQ(a.retried_tasks, b.retried_tasks);
    EXPECT_EQ(a.cycle_ms, b.cycle_ms);
    ASSERT_EQ(a.proofs.size(), b.proofs.size());
    EXPECT_EQ(a.proofs[0].commit_a.root, b.proofs[0].commit_a.root);
}

TEST_F(SystemFaultsTest, DisabledInjectionIsZeroOverhead)
{
    // An attached injector with an empty plan must leave every output
    // bit-identical to a run that never heard of fault injection.
    FaultPlan empty;
    auto with = run(&empty);
    auto without = run(nullptr);
    EXPECT_EQ(with.stats.total_ms, without.stats.total_ms);
    EXPECT_EQ(with.stats.throughput_per_ms,
              without.stats.throughput_per_ms);
    EXPECT_EQ(with.stats.first_latency_ms,
              without.stats.first_latency_ms);
    EXPECT_EQ(with.stats.busy_lane_ms, without.stats.busy_lane_ms);
    EXPECT_EQ(with.stats.peak_device_bytes,
              without.stats.peak_device_bytes);
    EXPECT_EQ(with.cycle_ms, without.cycle_ms);
    EXPECT_EQ(with.degraded_cycles, 0u);
    EXPECT_EQ(with.corrupt_detected, 0u);
    EXPECT_EQ(with.retried_tasks, 0u);
    EXPECT_EQ(with.relocated_lane_fraction, 0.0);
}

TEST_F(SystemFaultsTest, DefaultPathRegressionPin)
{
    // Pin the fault-free cycle model for a fixed seed: cycle_ms must
    // equal the closed-form work-model prediction, so refactors of the
    // fault paths cannot silently perturb the seed behavior.
    auto r = run(nullptr, 2024);
    gpusim::Device dev(gpusim::DeviceSpec::v100());
    auto model = systemWorkModel(kVars, 2024);
    double cores = dev.spec().cuda_cores;
    double comp_ms =
        model.totalCycles() / (cores * dev.spec().cyclesPerMs()) +
        gpusim::kKernelLaunchMs;
    double expected_cycle =
        std::max(comp_ms, dev.copyDurationMs(model.h2d_bytes));
    EXPECT_DOUBLE_EQ(r.cycle_ms, expected_cycle);
    EXPECT_DOUBLE_EQ(r.comp_ms_per_cycle, comp_ms);
    EXPECT_EQ(r.stats.batch, kBatch);
}

TEST_F(SystemFaultsTest, LaneFailureDegradesGracefully)
{
    // 10% of the lanes down for the whole run: every cycle is degraded,
    // the split re-allocates onto the 90% survivors, the run slows by
    // at most 1/0.9, and the functional proofs still verify.
    size_t horizon = kBatch + systemWorkModel(kVars, 2024).totalStages();
    FaultPlan plan;
    plan.events.push_back(
        {FaultKind::LaneFailure, 0, horizon, 0.1});
    auto healthy = run(nullptr, 2024, /*functional=*/2);
    auto degraded = run(&plan, 2024, /*functional=*/2);

    EXPECT_TRUE(degraded.verified);
    EXPECT_EQ(degraded.proofs.size(), 2u);
    EXPECT_GT(degraded.degraded_cycles, 0u);
    EXPECT_NEAR(degraded.relocated_lane_fraction, 0.1, 1e-12);
    EXPECT_GT(degraded.stats.total_ms, healthy.stats.total_ms);
    // Compute stretches by exactly 1/0.9; the cycle stretches by at
    // most that (transfer legs are unaffected and multi-stream overlap
    // can hide part of the compute stretch behind them).
    EXPECT_LE(degraded.stats.total_ms,
              healthy.stats.total_ms / 0.9 +
                  1e-9 * healthy.stats.total_ms);
    EXPECT_LT(degraded.stats.throughput_per_ms,
              healthy.stats.throughput_per_ms);
}

TEST_F(SystemFaultsTest, CorruptedLayerDetectedAndRetried)
{
    auto plan = FaultPlan::parse("corrupt:3,corrupt:11:2,corrupt:20");
    auto healthy = run(nullptr);
    auto faulted = run(&plan, 2024, /*functional=*/1);

    // Every scheduled corruption lands on an admitted task, is caught
    // by the root re-check, and costs exactly one retry cycle — no
    // invalid proof escapes.
    EXPECT_EQ(faulted.corrupt_detected, 3u);
    EXPECT_EQ(faulted.retried_tasks, 3u);
    EXPECT_TRUE(faulted.verified);
    EXPECT_GT(faulted.stats.total_ms, healthy.stats.total_ms);
    EXPECT_EQ(faulted.stats.batch, kBatch); // retries re-run tasks,
                                            // they do not add proofs
}

TEST_F(SystemFaultsTest, TransferStallsSlowTheStream)
{
    size_t horizon = kBatch + systemWorkModel(kVars, 2024).totalStages();
    FaultPlan plan;
    plan.events.push_back(
        {FaultKind::TransferStall, 0, horizon, 50.0});
    gpusim::FaultStats stats;
    auto healthy = run(nullptr);
    auto stalled = run(&plan, 2024, 0, &stats);
    EXPECT_GT(stats.stalled_transfers, 0u);
    EXPECT_GT(stalled.stats.total_ms, healthy.stats.total_ms);
}

TEST_F(SystemFaultsTest, RandomPlanStillVerifies)
{
    size_t horizon = kBatch + systemWorkModel(kVars, 2024).totalStages();
    auto plan = FaultPlan::random(5, horizon, 0.6);
    auto r = run(&plan, 2024, /*functional=*/2);
    EXPECT_TRUE(r.verified);
    EXPECT_GT(r.degraded_cycles + r.corrupt_detected, 0u);
}

} // namespace
} // namespace bzk
