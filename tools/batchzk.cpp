/**
 * @file
 * batchzk — command-line front end for the library.
 *
 *   batchzk prove   --log-gates N [--seed S] [--out FILE]
 *       generate a random satisfied instance, prove it, write the
 *       proof (with its parameter header) to FILE;
 *   batchzk verify  --in FILE
 *       read a proof file and verify it;
 *   batchzk info    --in FILE
 *       print a proof file's parameters and sizes;
 *   batchzk simulate [--gpu NAME] [--log-gates N] [--batch B]
 *       run the pipelined batch system on a simulated GPU and print
 *       throughput / latency / memory;
 *   batchzk trace   [FILE] [--gpu NAME] [--log-gates N] [--out FILE]
 *       record one batch run with a TraceRecorder and dump a Chrome
 *       trace (chrome://tracing / Perfetto) with per-module lane
 *       spans, device op spans, and fault/retry instants;
 *   batchzk metrics [--gpu NAME] [--log-gates N] [--batch B]
 *                   [--format prom|json] [--out FILE]
 *       run one batch with a MetricsRegistry attached and print the
 *       collected metrics in Prometheus text (default) or JSON;
 *   batchzk chaos   --faults PLAN [--gpu NAME] [--log-gates N]
 *                   [--batch B] [--seed S]
 *       run the batch system healthy and again under a deterministic
 *       fault plan, and print the before/after degradation table.
 *       PLAN is either `random:SEED:INTENSITY` or a comma list of
 *       stall:B-E:M, lanes:B-E:F, corrupt:C[:N] events;
 *   batchzk sched   [--gpu NAME] [--sizes N,N,...] [--log-gates N]
 *                   [--batch B]
 *       run a heterogeneous batch (mixed table log-sizes) through the
 *       pipeline scheduler and print per-task admission / completion
 *       accounting plus the aggregate schedule. --sizes takes a comma
 *       list of per-task log-sizes (e.g. 10,10,12,14); without it the
 *       batch is uniform at --log-gates;
 *   batchzk recover --journal-dir DIR [--gpu NAME]
 *       replay a durable task journal, re-prove every admitted task
 *       that has no completion record, and print the recovery
 *       accounting (records replayed, torn offset, proofs restored);
 *   batchzk serve   [--port P] [--log-gates N] [--threads T]
 *                   [--rate R] [--window W] [--queue-cap C]
 *                   [--gpu NAME] [--seed S]
 *       run the proof service on 127.0.0.1:P until SIGINT/SIGTERM:
 *       real proofs, per-tenant rate limits (R submits/s), bounded
 *       admission queue (C), in-flight window W (0 derives the
 *       pipeline depth from the GPU model). --log-gates caps the task
 *       size a Submit may carry;
 *   batchzk submit  [--port P] [--tenant T] [--batch B]
 *                   [--log-gates N] [--seed S]
 *       submit B tasks to a running service, wait for the proofs,
 *       verify each one locally, and print the round-trip accounting.
 *
 * `serve` and `submit` speak the framed wire protocol documented in
 * docs/SERVICE.md.
 *
 * `prove` additionally accepts --journal-dir DIR to journal the task
 * before proving and its completion (with the proof bytes) after, so a
 * killed prove can be finished later with `batchzk recover`.
 */

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "BatchzkCli.h"
#include "core/DurableService.h"
#include "core/FullSnark.h"
#include "core/HighDegreeSnark.h"
#include "core/PipelinedSystem.h"
#include "core/Serialize.h"
#include "core/Snark.h"
#include "exec/ExecContext.h"
#include "gpusim/Device.h"
#include "gpusim/FaultInjector.h"
#include "journal/Journal.h"
#include "net/Client.h"
#include "net/Executor.h"
#include "net/Server.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "util/Log.h"
#include "util/Stats.h"
#include "util/Timer.h"

using namespace bzk;

namespace {

using cli::Args;

constexpr char kMagic[4] = {'B', 'Z', 'K', 'P'};
constexpr uint8_t kVersion = 2;
constexpr uint8_t kSystemTable = 0;
constexpr uint8_t kSystemFull = 1;
constexpr uint8_t kSystemHdg = 2;

/** --kind for single-protocol commands (mixed is sched-only). */
sched::ProtocolKind
kindByName(const std::string &name)
{
    if (name == "high-degree-gate")
        return sched::ProtocolKind::HighDegreeGate;
    if (name == "table-commit")
        return sched::ProtocolKind::TableCommit;
    fatal("--kind '%s' is not valid here (mixed is sched-only)",
          name.c_str());
}

sched::LanePolicy
lanePolicyByName(const std::string &name)
{
    if (name == "fixed-ratio")
        return sched::LanePolicy::FixedRatio;
    if (name == "measured-cost")
        return sched::LanePolicy::MeasuredCost;
    return sched::LanePolicy::Proportional;
}

/**
 * Deterministic demo circuit with one public input, regenerable from
 * (log_gates, seed) so verify needs only the proof file.
 */
Circuit<Fr>
demoCircuit(unsigned log_gates, uint64_t seed)
{
    Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
    Circuit<Fr> c;
    std::vector<WireId> pool{c.addInput(), c.addConst(Fr::fromUint(3))};
    for (int i = 0; i < 6; ++i)
        pool.push_back(c.addWitness());
    size_t target = (size_t{1} << log_gates) -
                    (size_t{1} << (log_gates - 2));
    while (c.numGates() < target) {
        WireId l = pool[rng.nextBounded(pool.size())];
        WireId r = pool[rng.nextBounded(pool.size())];
        pool.push_back((rng.next() & 1) ? c.mul(l, r) : c.add(l, r));
        if (pool.size() > 128)
            pool.erase(pool.begin() + 2);
    }
    return c;
}

gpusim::DeviceSpec
specByName(const std::string &name)
{
    for (const auto &spec : gpusim::DeviceSpec::allPresets())
        if (spec.name == name)
            return spec;
    fatal("unknown GPU '%s' (try V100, A100, 3090Ti, H100, GH200)",
          name.c_str());
}

void
writeProofFile(const Args &args, uint8_t system,
               const std::vector<uint8_t> &blob)
{
    std::ofstream out(args.out, std::ios::binary);
    if (!out)
        fatal("cannot open '%s' for writing", args.out.c_str());
    out.write(kMagic, 4);
    uint8_t header[11];
    header[0] = kVersion;
    header[1] = static_cast<uint8_t>(args.log_gates);
    header[2] = system;
    for (int i = 0; i < 8; ++i)
        header[3 + i] = static_cast<uint8_t>(args.seed >> (8 * i));
    out.write(reinterpret_cast<const char *>(header), sizeof(header));
    out.write(reinterpret_cast<const char *>(blob.data()),
              static_cast<std::streamsize>(blob.size()));
    std::printf("wrote %s (%zu bytes)\n", args.out.c_str(),
                blob.size() + 15);
}

int
cmdProve(const Args &args)
{
    if (args.log_gates < 8 || args.log_gates > 20)
        fatal("--log-gates must be in [8, 20] for the CLI prover");
    if (kindByName(args.kind) == sched::ProtocolKind::HighDegreeGate) {
        // High-degree gate protocol: a^4 * b = c row-wise, instance
        // regenerable from the seed alone (verify needs only the
        // proof file).
        std::printf("building a satisfied high-degree gate instance "
                    "with 2^%u rows...\n",
                    args.log_gates);
        Rng rng(args.seed);
        auto tables = highDegreeInstance<Fr>(args.log_gates, rng);
        HighDegreeSnark<Fr> snark(args.log_gates, args.seed);
        exec::ExecContext exec;
        snark.setExec(&exec);
        Timer timer;
        auto proof = snark.prove(tables, {});
        std::printf("proved in %.1f ms\n", timer.milliseconds());
        writeProofFile(args, kSystemHdg,
                       serializeHighDegreeProof(proof));
        return 0;
    }
    std::printf("building a deterministic satisfied instance with "
                "~2^%u gates (%s system)...\n",
                args.log_gates, args.system.c_str());
    auto circuit = demoCircuit(args.log_gates, args.seed);
    Rng wit_rng(args.seed + 1);
    std::vector<Fr> inputs{Fr::fromUint(11)};
    std::vector<Fr> witness(circuit.numWitnesses());
    for (auto &w : witness)
        w = Fr::random(wit_rng);
    auto assignment = circuit.evaluate(inputs, witness);

    Timer timer;
    if (args.system == "full") {
        FullSnark<Fr> snark(buildR1cs(circuit), args.seed);
        auto proof = snark.prove(inputs, assignment);
        std::printf("proved in %.1f ms (%zu-byte wiring-sound proof)\n",
                    timer.milliseconds(), proof.sizeBytes());
        writeProofFile(args, kSystemFull, serializeFullProof(proof));
    } else if (args.system == "table") {
        auto tables = circuit.buildTables(assignment);
        // WAL discipline: the task is durable before any proving work,
        // so a killed prove is recoverable via `batchzk recover`.
        std::unique_ptr<journal::Journal> journal;
        if (!args.journal_dir.empty()) {
            journal = std::make_unique<journal::Journal>(
                journal::JournalOptions{args.journal_dir});
            journal::TaskRecord task;
            task.task_id = args.seed;
            task.n_vars = tables.n_vars;
            task.seed = args.seed;
            journal->append(task);
        }
        Snark<Fr> snark(tables.n_vars, args.seed);
        exec::ExecContext exec;
        snark.setExec(&exec);
        auto proof = snark.prove(tables, inputs);
        std::printf("proved in %.1f ms (%zu-byte proof)\n",
                    timer.milliseconds(), proof.sizeBytes());
        auto blob = serializeProof(proof);
        if (journal) {
            // Ack-only completion: the proof artifact is the .bzkp
            // file; the ledger records that this task finished so
            // `recover` will not re-prove it.
            journal::CompletionRecord done;
            done.task_id = args.seed;
            done.n_vars = tables.n_vars;
            done.seed = args.seed;
            journal->append(done);
            std::printf("journaled task + completion under %s (%zu "
                        "records, %llu bytes)\n",
                        args.journal_dir.c_str(),
                        journal->stats().task_appends +
                            journal->stats().completion_appends,
                        static_cast<unsigned long long>(
                            journal->stats().bytes_appended));
        }
        writeProofFile(args, kSystemTable, blob);
    } else {
        fatal("--system must be 'table' or 'full'");
    }
    return 0;
}

int
cmdRecover(const Args &args)
{
    if (args.journal_dir.empty())
        fatal("recover needs --journal-dir DIR");
    gpusim::Device dev(specByName(args.gpu));
    obs::MetricsRegistry metrics;
    SystemOptions opt;
    opt.seed = args.seed;
    opt.threads = args.threads;
    DurableProofService service(dev, {args.journal_dir}, opt, &metrics);
    const RecoveryInfo &recovery = service.recovery();

    Timer timer;
    size_t reproved = service.processAll();
    double reprove_ms = timer.milliseconds();
    bool ok = service.verifyAll();

    std::printf("journal     : %s\n", args.journal_dir.c_str());
    TablePrinter table({"recovery metric", "value"});
    table.addRow({"records replayed",
                  std::to_string(recovery.records_replayed)});
    table.addRow({"proofs restored",
                  std::to_string(recovery.proofs_restored)});
    table.addRow({"tasks re-submitted",
                  std::to_string(recovery.tasks_resubmitted)});
    table.addRow({"duplicates absorbed",
                  std::to_string(recovery.duplicates)});
    table.addRow({"torn records",
                  std::to_string(recovery.torn_records)});
    if (recovery.torn.torn)
        table.addRow({"torn at",
                      "segment " +
                          std::to_string(recovery.torn.segment_index) +
                          " offset " +
                          std::to_string(recovery.torn.offset) + " (" +
                          recovery.torn.reason + ")"});
    table.addRow({"replay wall (ms)",
                  formatSig(recovery.recovery_wall_ms, 4)});
    table.addRow({"tasks re-proved", std::to_string(reproved)});
    table.addRow({"re-prove wall (ms)", formatSig(reprove_ms, 4)});
    table.addRow({"all proofs verify", ok ? "yes" : "NO"});
    std::printf("%s", table.render().c_str());
    if (!ok) {
        std::fprintf(stderr,
                     "recover: a journaled proof failed verification\n");
        return 1;
    }
    return 0;
}

bool
readProofFile(const std::string &path, unsigned &log_gates,
              uint8_t &system, uint64_t &seed,
              std::vector<uint8_t> &blob)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
        return false;
    }
    char magic[4];
    uint8_t header[11];
    in.read(magic, 4);
    in.read(reinterpret_cast<char *>(header), sizeof(header));
    if (!in || std::memcmp(magic, kMagic, 4) != 0 ||
        header[0] != kVersion) {
        std::fprintf(stderr, "'%s' is not a batchzk proof file\n",
                     path.c_str());
        return false;
    }
    log_gates = header[1];
    system = header[2];
    seed = 0;
    for (int i = 0; i < 8; ++i)
        seed |= static_cast<uint64_t>(header[3 + i]) << (8 * i);
    blob.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
    return true;
}

int
cmdVerify(const Args &args)
{
    unsigned log_gates;
    uint8_t system;
    uint64_t seed;
    std::vector<uint8_t> blob;
    if (!readProofFile(args.in, log_gates, system, seed, blob))
        return 2;
    std::vector<Fr> inputs{Fr::fromUint(11)};
    Timer timer;
    bool ok = false;
    if (system == kSystemFull) {
        auto proof = deserializeFullProof<Fr>(blob);
        if (!proof) {
            std::printf("REJECT (malformed proof)\n");
            return 1;
        }
        auto circuit = demoCircuit(log_gates, seed);
        FullSnark<Fr> snark(buildR1cs(circuit), seed);
        timer.reset();
        ok = snark.verify(*proof, inputs);
    } else if (system == kSystemHdg) {
        auto proof = deserializeHighDegreeProof<Fr>(blob);
        if (!proof) {
            std::printf("REJECT (malformed proof)\n");
            return 1;
        }
        HighDegreeSnark<Fr> snark(proof->commit_a.n_vars, seed);
        timer.reset();
        ok = snark.verify(*proof, {});
    } else {
        auto proof = deserializeProof<Fr>(blob);
        if (!proof) {
            std::printf("REJECT (malformed proof)\n");
            return 1;
        }
        Snark<Fr> snark(proof->commit_a.n_vars, seed);
        timer.reset();
        ok = snark.verify(*proof, inputs);
    }
    std::printf("%s (verified in %.1f ms)\n", ok ? "ACCEPT" : "REJECT",
                timer.milliseconds());
    return ok ? 0 : 1;
}

int
cmdInfo(const Args &args)
{
    unsigned log_gates;
    uint8_t system;
    uint64_t seed;
    std::vector<uint8_t> blob;
    if (!readProofFile(args.in, log_gates, system, seed, blob))
        return 2;
    std::printf("file        : %s\n", args.in.c_str());
    std::printf("format      : BZKP v%u\n", kVersion);
    std::printf("system      : %s\n",
                system == kSystemFull   ? "full (wiring-sound)"
                : system == kSystemHdg ? "high-degree-gate"
                                        : "table");
    std::printf("circuit     : ~2^%u gates\n", log_gates);
    std::printf("encoder seed: %llu\n",
                static_cast<unsigned long long>(seed));
    if (system == kSystemFull) {
        auto proof = deserializeFullProof<Fr>(blob);
        std::printf("blob        : %zu bytes (%s)\n", blob.size(),
                    proof ? "well-formed" : "MALFORMED");
        if (proof)
            std::printf("sum-checks  : %zu + %zu rounds; %zu opened "
                        "columns\n",
                        proof->phase1.rounds.size(),
                        proof->phase2.rounds.size(),
                        proof->open_w.columns.size());
    } else if (system == kSystemHdg) {
        auto proof = deserializeHighDegreeProof<Fr>(blob);
        std::printf("blob        : %zu bytes (%s)\n", blob.size(),
                    proof ? "well-formed" : "MALFORMED");
        if (proof)
            std::printf("sum-check   : %zu degree-6 rounds; %zu opened "
                        "columns per table\n",
                        proof->gate_sc.rounds.size(),
                        proof->open_a.columns.size());
    } else {
        auto proof = deserializeProof<Fr>(blob);
        std::printf("blob        : %zu bytes (%s)\n", blob.size(),
                    proof ? "well-formed" : "MALFORMED");
        if (proof)
            std::printf("sum-check   : %zu rounds; %zu opened columns "
                        "per table\n",
                        proof->constraint_sc.rounds.size(),
                        proof->open_a.columns.size());
    }
    return 0;
}

int
cmdSimulate(const Args &args)
{
    gpusim::Device dev(specByName(args.gpu));
    SystemOptions opt;
    opt.functional = 0;
    opt.seed = args.seed;
    PipelinedZkpSystem system(dev, opt);
    Rng rng(args.seed);
    auto result = system.run(args.batch, args.log_gates, rng);
    std::printf("device      : %s (%u lanes @ %.2f GHz)\n",
                dev.spec().name.c_str(), dev.spec().cuda_cores,
                dev.spec().clock_ghz);
    std::printf("workload    : %zu proofs, 2^%u-gate circuits\n",
                args.batch, args.log_gates);
    std::printf("throughput  : %.2f proofs/s\n",
                result.stats.throughput_per_ms * 1e3);
    std::printf("latency     : %.2f ms (first proof)\n",
                result.stats.first_latency_ms);
    std::printf("memory      : %.3f GB peak\n",
                static_cast<double>(result.stats.peak_device_bytes) /
                    (1ULL << 30));
    std::printf("module split: enc %.3f / merkle %.3f / sumcheck %.3f "
                "ms per proof\n",
                result.encoder_ms, result.merkle_ms, result.sumcheck_ms);
    std::printf("comm vs comp: %.3f / %.3f ms per cycle (overlapped)\n",
                result.comm_ms_per_cycle, result.comp_ms_per_cycle);
    return 0;
}

int
cmdTrace(const Args &args)
{
    gpusim::Device dev(specByName(args.gpu));
    obs::TraceRecorder recorder;
    dev.setTraceRecorder(&recorder);
    SystemOptions opt;
    opt.functional = 0;
    opt.seed = args.seed;
    PipelinedZkpSystem system(dev, opt);
    system.setObservability(nullptr, &recorder);
    Rng rng(args.seed);
    system.run(std::min<size_t>(args.batch, 64), args.log_gates, rng);
    std::string json = recorder.chromeTraceJson();
    std::string path = args.out == "proof.bzkp" ? "trace.json" : args.out;
    std::ofstream out(path);
    if (!out)
        fatal("cannot open '%s' for writing", path.c_str());
    out << json;
    std::printf("wrote %s (%zu bytes, %zu spans, %zu instants) — load "
                "in chrome://tracing or https://ui.perfetto.dev\n",
                path.c_str(), json.size(), recorder.spans().size(),
                recorder.instants().size());
    return 0;
}

int
cmdMetrics(const Args &args)
{
    if (args.format != "prom" && args.format != "json")
        fatal("--format must be 'prom' or 'json'");
    gpusim::Device dev(specByName(args.gpu));
    obs::MetricsRegistry metrics;
    SystemOptions opt;
    // Prove one task for real so the bzk_host_* gauges report actual
    // host-execution timing alongside the simulated counters.
    opt.functional = 1;
    opt.seed = args.seed;
    opt.threads = args.threads;
    PipelinedZkpSystem system(dev, opt);
    system.setObservability(&metrics, nullptr);
    Rng rng(args.seed);
    system.run(args.batch, args.log_gates, rng);
    std::string text = args.format == "json" ? metrics.toJson()
                                             : metrics.toPrometheus();
    if (args.out != "proof.bzkp") {
        std::ofstream out(args.out);
        if (!out)
            fatal("cannot open '%s' for writing", args.out.c_str());
        out << text;
        std::printf("wrote %s (%zu bytes, %zu metrics)\n",
                    args.out.c_str(), text.size(), metrics.size());
    } else {
        std::fputs(text.c_str(), stdout);
    }
    return 0;
}

/** Resolve --faults into a plan: explicit spec or random:SEED:INTENS. */
gpusim::FaultPlan
resolveFaultPlan(const std::string &spec, size_t horizon)
{
    const std::string random_prefix = "random:";
    if (spec.rfind(random_prefix, 0) != 0)
        return gpusim::FaultPlan::parse(spec);
    std::string rest = spec.substr(random_prefix.size());
    size_t colon = rest.find(':');
    if (colon == std::string::npos)
        fatal("--faults random plan needs random:SEED:INTENSITY");
    uint64_t seed = 0;
    double intensity = 0.0;
    try {
        seed = std::stoull(rest.substr(0, colon));
        intensity = std::stod(rest.substr(colon + 1));
    } catch (...) {
        fatal("--faults random plan needs numeric SEED and INTENSITY");
    }
    if (intensity <= 0.0 || intensity > 1.0)
        fatal("--faults random intensity must be in (0, 1]");
    return gpusim::FaultPlan::random(seed, horizon, intensity);
}

int
cmdChaos(const Args &args)
{
    if (args.faults.empty())
        fatal("chaos needs --faults PLAN (explicit events or "
              "random:SEED:INTENSITY)");

    SystemOptions opt;
    opt.functional = 0;
    opt.seed = args.seed;
    Rng rng(args.seed);

    gpusim::Device healthy_dev(specByName(args.gpu));
    auto healthy =
        PipelinedZkpSystem(healthy_dev, opt).run(args.batch,
                                                 args.log_gates, rng);

    size_t horizon =
        args.batch + systemWorkModel(args.log_gates, opt.seed)
                         .totalStages();
    gpusim::FaultPlan plan = resolveFaultPlan(args.faults, horizon);
    gpusim::FaultInjector injector(plan, args.seed);
    gpusim::Device faulted_dev(specByName(args.gpu));
    faulted_dev.setFaultInjector(&injector);
    Rng frng(args.seed);
    auto faulted = PipelinedZkpSystem(faulted_dev, opt)
                       .run(args.batch, args.log_gates, frng);

    std::printf("device      : %s\n", healthy_dev.spec().name.c_str());
    std::printf("workload    : %zu proofs, 2^%u-gate circuits\n",
                args.batch, args.log_gates);
    std::printf("fault plan  :\n%s", plan.describe().c_str());

    auto pct_delta = [](double before, double after) {
        if (before == 0.0)
            return std::string("-");
        return formatSig((after / before - 1.0) * 100.0, 3) + "%";
    };
    TablePrinter table({"metric", "healthy", "faulted", "delta"});
    table.addRow({"throughput (proofs/s)",
                  formatSig(healthy.stats.throughput_per_ms * 1e3, 4),
                  formatSig(faulted.stats.throughput_per_ms * 1e3, 4),
                  pct_delta(healthy.stats.throughput_per_ms,
                            faulted.stats.throughput_per_ms)});
    table.addRow({"makespan (ms)",
                  formatSig(healthy.stats.total_ms, 4),
                  formatSig(faulted.stats.total_ms, 4),
                  pct_delta(healthy.stats.total_ms,
                            faulted.stats.total_ms)});
    table.addRow({"first latency (ms)",
                  formatSig(healthy.stats.first_latency_ms, 4),
                  formatSig(faulted.stats.first_latency_ms, 4),
                  pct_delta(healthy.stats.first_latency_ms,
                            faulted.stats.first_latency_ms)});
    table.addRow({"degraded cycles", "0",
                  std::to_string(faulted.degraded_cycles), "-"});
    table.addRow({"relocated lane fraction", "0",
                  formatSig(faulted.relocated_lane_fraction, 3), "-"});
    table.addRow({"corrupt layers detected", "0",
                  std::to_string(faulted.corrupt_detected), "-"});
    table.addRow({"tasks retried", "0",
                  std::to_string(faulted.retried_tasks), "-"});
    table.addRow({"stalled transfers", "0",
                  std::to_string(injector.stats().stalled_transfers),
                  "-"});
    std::printf("%s", table.render().c_str());
    if (faulted.corrupt_detected > 0 || faulted.degraded_cycles > 0)
        std::printf("faults absorbed: corrupted layers were re-proved "
                    "and degraded cycles ran on surviving lanes; no "
                    "invalid proof left the pipeline\n");
    return 0;
}

int
cmdSched(const Args &args)
{
    std::vector<unsigned> sizes;
    if (!args.sizes.empty()) {
        size_t pos = 0;
        while (pos < args.sizes.size()) {
            size_t comma = args.sizes.find(',', pos);
            if (comma == std::string::npos)
                comma = args.sizes.size();
            try {
                sizes.push_back(static_cast<unsigned>(
                    std::stoul(args.sizes.substr(pos, comma - pos))));
            } catch (...) {
                fatal("--sizes needs a comma list of log-sizes");
            }
            pos = comma + 1;
        }
    } else {
        sizes.assign(args.batch, args.log_gates);
    }
    for (unsigned n : sizes)
        if (n < 8 || n > 24)
            fatal("task log-size %u out of range [8, 24]", n);

    gpusim::Device dev(specByName(args.gpu));
    SystemOptions opt;
    opt.functional = 0;
    opt.seed = args.seed;
    opt.lane_policy = lanePolicyByName(args.lane_policy);
    PipelinedZkpSystem system(dev, opt);
    std::vector<sched::ProofTask> tasks;
    tasks.reserve(sizes.size());
    for (size_t i = 0; i < sizes.size(); ++i) {
        sched::ProtocolKind kind =
            args.kind == "mixed"
                ? (i % 2 ? sched::ProtocolKind::HighDegreeGate
                         : sched::ProtocolKind::TableCommit)
                : kindByName(args.kind);
        tasks.push_back(makeProofTask(kind, sizes[i], opt.seed, i));
    }
    auto result = system.runTasks(std::move(tasks));

    std::printf("device      : %s (%u lanes @ %.2f GHz)\n",
                dev.spec().name.c_str(), dev.spec().cuda_cores,
                dev.spec().clock_ghz);
    std::printf("workload    : %zu tasks, log-sizes %s, kind %s, "
                "lane policy %s\n",
                sizes.size(),
                args.sizes.empty()
                    ? ("uniform " + std::to_string(args.log_gates))
                          .c_str()
                    : args.sizes.c_str(),
                args.kind.c_str(), args.lane_policy.c_str());
    size_t cycles = 0;
    for (const auto &ts : result.task_stats)
        cycles = std::max(cycles, ts.complete_cycle + 1);
    std::printf("makespan    : %.3f ms over %zu pipeline cycles\n",
                result.stats.total_ms, cycles);
    std::printf("throughput  : %.2f proofs/s\n",
                result.stats.throughput_per_ms * 1e3);
    std::printf("pacing cycle: %.3f ms (comm %.3f / comp %.3f)\n",
                result.cycle_ms, result.comm_ms_per_cycle,
                result.comp_ms_per_cycle);

    TablePrinter table({"task", "kind", "log-size", "admit cyc",
                        "complete cyc", "wait cyc", "turnaround ms"});
    for (const auto &ts : result.task_stats)
        table.addRow({std::to_string(ts.id),
                      sched::protocolKindName(ts.kind),
                      std::to_string(ts.n_vars),
                      std::to_string(ts.admit_cycle),
                      std::to_string(ts.complete_cycle),
                      std::to_string(ts.queue_wait_cycles),
                      formatSig(ts.complete_ms, 4)});
    std::printf("%s", table.render().c_str());
    return 0;
}

volatile std::sig_atomic_t g_serve_stop = 0;

void
onServeSignal(int)
{
    g_serve_stop = 1;
}

int
cmdServe(const Args &args)
{
    if (args.log_gates < 8 || args.log_gates > 20)
        fatal("--log-gates must be in [8, 20] for the service");
    net::ServerOptions opt;
    opt.port = args.port;
    opt.queue_capacity = args.queue_cap;
    opt.window = args.window;
    opt.tenant_rate_per_s = static_cast<double>(args.rate);
    opt.workers = args.threads ? args.threads : 2;
    opt.max_n_vars = args.log_gates;
    opt.device = args.gpu;
    opt.seed = args.seed;
    specByName(args.gpu); // fail fast on a bad --gpu

    net::SnarkExecutor executor;
    obs::MetricsRegistry metrics;
    net::ProofServer server(opt, executor, &metrics);
    if (!server.start())
        fatal("cannot bind 127.0.0.1:%u", unsigned{args.port});

    std::signal(SIGINT, onServeSignal);
    std::signal(SIGTERM, onServeSignal);
    net::ServerStats boot = server.stats();
    std::printf("serving on 127.0.0.1:%u (window %zu, queue %zu, "
                "rate %llu/s per tenant, max log-size %u, %zu "
                "workers)\n",
                unsigned{server.port()}, boot.window,
                args.queue_cap,
                static_cast<unsigned long long>(args.rate),
                args.log_gates, opt.workers);
    std::fflush(stdout);
    while (!g_serve_stop)
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    server.stop();

    net::ServerStats stats = server.stats();
    std::printf("shutdown: %llu connections, %llu submits, %llu "
                "proofs, %llu retries, %llu sheds, %llu protocol "
                "errors\n",
                static_cast<unsigned long long>(
                    stats.connections_accepted),
                static_cast<unsigned long long>(stats.submits),
                static_cast<unsigned long long>(stats.results_ok),
                static_cast<unsigned long long>(stats.retries),
                static_cast<unsigned long long>(stats.sheds),
                static_cast<unsigned long long>(
                    stats.protocol_errors));
    return 0;
}

int
cmdSubmit(const Args &args)
{
    if (args.log_gates < 8 || args.log_gates > 20)
        fatal("--log-gates must be in [8, 20] for the service");
    net::SyncClient client;
    if (!client.connect(args.port, args.tenant)) {
        std::fprintf(stderr,
                     "submit: cannot reach a service on "
                     "127.0.0.1:%u\n",
                     unsigned{args.port});
        return 2;
    }
    std::printf("connected (wire v%u, server window %u)\n",
                unsigned{client.ack().version}, client.ack().window);

    sched::ProtocolKind kind = kindByName(args.kind);
    if (kind != sched::ProtocolKind::TableCommit &&
        client.version() < 2) {
        std::fprintf(stderr,
                     "submit: server negotiated wire v%u, which "
                     "cannot carry --kind %s\n",
                     unsigned{client.version()}, args.kind.c_str());
        return 2;
    }
    size_t verified = 0, retried = 0;
    Timer timer;
    for (size_t i = 0; i < args.batch; ++i) {
        net::Submit task;
        task.task_id = args.tenant * 100000 + i + 1;
        task.n_vars = args.log_gates;
        task.seed = args.seed;
        task.kind = kind;
        std::optional<net::Result> result;
        for (int attempt = 0; attempt < 50; ++attempt) {
            result = client.roundTrip(task);
            if (!result)
                break;
            if (result->status == net::Status::Ok)
                break;
            if (result->status == net::Status::Invalid)
                break;
            // Retry/Shed: honor the hint and resubmit.
            ++retried;
            std::this_thread::sleep_for(std::chrono::milliseconds(
                std::max<uint32_t>(result->retry_after_ms, 1)));
        }
        if (!result || result->status != net::Status::Ok) {
            std::fprintf(stderr,
                         "submit: task %llu got no proof (%s)\n",
                         static_cast<unsigned long long>(task.task_id),
                         result ? "rejected" : "connection lost");
            return 1;
        }
        bool proof_ok = false;
        if (kind == sched::ProtocolKind::HighDegreeGate) {
            auto proof =
                deserializeHighDegreeProof<Fr>(result->proof);
            HighDegreeSnark<Fr> snark(task.n_vars, task.seed);
            proof_ok = proof && snark.verify(*proof, {});
        } else {
            auto proof = deserializeProof<Fr>(result->proof);
            Snark<Fr> snark(task.n_vars, task.seed);
            proof_ok = proof && snark.verify(*proof, {});
        }
        if (!proof_ok) {
            std::fprintf(stderr,
                         "submit: task %llu proof REJECTED\n",
                         static_cast<unsigned long long>(task.task_id));
            return 1;
        }
        ++verified;
    }
    std::printf("%zu/%zu proofs verified in %.1f ms (%zu "
                "backpressure retries)\n",
                verified, args.batch, timer.milliseconds(), retried);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    cli::ParseResult parsed = cli::parse(argc, argv, args);
    if (!parsed.ok) {
        std::fprintf(stderr, "batchzk: %s\n%s", parsed.error.c_str(),
                     cli::usage());
        return 2;
    }
    // One process-wide default: every ExecContext resolved with
    // threads = 0 (prove, simulate, baselines) picks this up.
    exec::setDefaultThreads(args.threads);
    if (args.command == "prove")
        return cmdProve(args);
    if (args.command == "verify")
        return cmdVerify(args);
    if (args.command == "info")
        return cmdInfo(args);
    if (args.command == "simulate")
        return cmdSimulate(args);
    if (args.command == "trace")
        return cmdTrace(args);
    if (args.command == "metrics")
        return cmdMetrics(args);
    if (args.command == "chaos")
        return cmdChaos(args);
    if (args.command == "sched")
        return cmdSched(args);
    if (args.command == "serve")
        return cmdServe(args);
    if (args.command == "submit")
        return cmdSubmit(args);
    return cmdRecover(args); // parse() guarantees a known command
}
