#ifndef BZK_TOOLS_BATCHZKCLI_H_
#define BZK_TOOLS_BATCHZKCLI_H_

/**
 * @file
 * Argument parsing for the batchzk CLI, extracted so the shell
 * contract — unknown subcommands and flags exit nonzero with a usage
 * message, never fall through silently — is unit-testable
 * (tests/test_deaths.cpp) without spawning the binary.
 */

#include <cstdint>
#include <cstdlib>
#include <string>

namespace bzk::cli {

/** Parsed batchzk invocation. */
struct Args
{
    std::string command;
    unsigned log_gates = 12;
    uint64_t seed = 2024;
    std::string in;
    std::string out = "proof.bzkp";
    std::string gpu = "GH200";
    std::string system = "table"; // or "full" (wiring-sound)
    size_t batch = 128;
    std::string faults;
    std::string format = "prom"; // metrics output: "prom" or "json"
    std::string sizes;           // sched: comma list of task log-sizes
    size_t threads = 0;          // host threads (0 = env/hardware)
    std::string journal_dir;     // durable task journal directory
    uint16_t port = 9091;        // serve/submit: loopback TCP port
    uint64_t tenant = 0;         // submit: tenant identity
    uint64_t rate = 0;           // serve: per-tenant submits/s (0 = off)
    size_t window = 0;           // serve: in-flight window (0 = derive)
    size_t queue_cap = 4096;     // serve: admission-queue capacity
    // Proving protocol: "table-commit", "high-degree-gate", or (sched
    // only) "mixed" for a batch alternating between the two.
    std::string kind = "table-commit";
    // sched: lane split policy, "proportional", "fixed-ratio", or
    // "measured-cost".
    std::string lane_policy = "proportional";
};

/** Outcome of a parse: ok, or a diagnostic for stderr. */
struct ParseResult
{
    bool ok = true;
    std::string error;

    static ParseResult
    fail(std::string message)
    {
        return {false, std::move(message)};
    }
};

inline const char *
usage()
{
    return "usage: batchzk <prove|verify|info|simulate|trace|metrics|"
           "chaos|sched|recover|serve|submit> [--log-gates N] "
           "[--seed S] [--system table|full] [--in FILE] [--out FILE] "
           "[--gpu NAME] [--batch B] [--faults PLAN] "
           "[--format prom|json] [--sizes N,N,...] [--threads T] "
           "[--journal-dir DIR] [--port P] [--tenant T] [--rate R] "
           "[--window W] [--queue-cap C] "
           "[--kind table-commit|high-degree-gate|mixed] "
           "[--lane-policy proportional|fixed-ratio|measured-cost]\n";
}

/**
 * Parse @p argv into @p args. Unknown commands, unknown flags, flags
 * missing their value, and non-numeric numeric values all fail with a
 * specific diagnostic; the caller prints it plus usage() and exits
 * nonzero.
 */
inline ParseResult
parse(int argc, char **argv, Args &args)
{
    if (argc < 2)
        return ParseResult::fail("missing command");
    args.command = argv[1];

    const char *known_commands[] = {"prove",    "verify", "info",
                                    "simulate", "trace",  "metrics",
                                    "chaos",    "sched",  "recover",
                                    "serve",    "submit"};
    bool known = false;
    for (const char *cmd : known_commands)
        known = known || args.command == cmd;
    if (!known)
        return ParseResult::fail("unknown command '" + args.command +
                                 "'");

    int first_opt = 2;
    // trace/metrics accept a positional output path:
    //   batchzk trace /tmp/t.json
    if ((args.command == "trace" || args.command == "metrics") &&
        argc > 2 && argv[2][0] != '-') {
        args.out = argv[2];
        first_opt = 3;
    }

    auto parse_unsigned = [](const std::string &value, uint64_t &out) {
        if (value.empty() ||
            value.find_first_not_of("0123456789") != std::string::npos)
            return false;
        out = std::strtoull(value.c_str(), nullptr, 10);
        return true;
    };

    for (int i = first_opt; i < argc; ++i) {
        std::string key = argv[i];
        if (key.rfind("--", 0) != 0)
            return ParseResult::fail("unexpected argument '" + key +
                                     "'");
        if (i + 1 >= argc)
            return ParseResult::fail("flag '" + key +
                                     "' is missing a value");
        std::string value = argv[++i];

        uint64_t number = 0;
        bool numeric = parse_unsigned(value, number);
        auto need_number = [&](const char *flag) {
            return ParseResult::fail(std::string("flag '") + flag +
                                     "' needs a non-negative integer, "
                                     "got '" +
                                     value + "'");
        };

        if (key == "--log-gates") {
            if (!numeric)
                return need_number("--log-gates");
            args.log_gates = static_cast<unsigned>(number);
        } else if (key == "--seed") {
            if (!numeric)
                return need_number("--seed");
            args.seed = number;
        } else if (key == "--in") {
            args.in = value;
        } else if (key == "--out") {
            args.out = value;
        } else if (key == "--gpu") {
            args.gpu = value;
        } else if (key == "--batch") {
            if (!numeric)
                return need_number("--batch");
            args.batch = number;
        } else if (key == "--system") {
            args.system = value;
        } else if (key == "--faults") {
            args.faults = value;
        } else if (key == "--format") {
            args.format = value;
        } else if (key == "--sizes") {
            args.sizes = value;
        } else if (key == "--threads") {
            if (!numeric)
                return need_number("--threads");
            args.threads = number;
        } else if (key == "--journal-dir") {
            args.journal_dir = value;
        } else if (key == "--port") {
            if (!numeric || number > 65535)
                return need_number("--port");
            args.port = static_cast<uint16_t>(number);
        } else if (key == "--tenant") {
            if (!numeric)
                return need_number("--tenant");
            args.tenant = number;
        } else if (key == "--rate") {
            if (!numeric)
                return need_number("--rate");
            args.rate = number;
        } else if (key == "--window") {
            if (!numeric)
                return need_number("--window");
            args.window = number;
        } else if (key == "--queue-cap") {
            if (!numeric)
                return need_number("--queue-cap");
            args.queue_cap = number;
        } else if (key == "--kind") {
            if (value != "table-commit" &&
                value != "high-degree-gate" && value != "mixed")
                return ParseResult::fail(
                    "flag '--kind' needs table-commit, "
                    "high-degree-gate, or mixed, got '" +
                    value + "'");
            args.kind = value;
        } else if (key == "--lane-policy") {
            if (value != "proportional" && value != "fixed-ratio" &&
                value != "measured-cost")
                return ParseResult::fail(
                    "flag '--lane-policy' needs proportional, "
                    "fixed-ratio, or measured-cost, got '" +
                    value + "'");
            args.lane_policy = value;
        } else {
            return ParseResult::fail("unknown flag '" + key + "'");
        }
    }
    return {};
}

} // namespace bzk::cli

#endif // BZK_TOOLS_BATCHZKCLI_H_
