#!/usr/bin/env python3
"""Unit tests for tools/check_bench.py (stdlib unittest only).

Run directly (python3 tools/test_check_bench.py) or via unittest
discovery; the CI lint job runs it on every push.
"""

import importlib.util
import json
import os
import sys
import tempfile
import unittest

_HERE = os.path.dirname(os.path.abspath(__file__))
_SPEC = importlib.util.spec_from_file_location(
    "check_bench", os.path.join(_HERE, "check_bench.py"))
check_bench = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_bench)


def dump(bench="bench_x", rows=None, meta=None):
    return {
        "bench": bench,
        "rows": [{"label": label, "metrics": metrics}
                 for label, metrics in (rows or {}).items()],
        "meta": meta or {},
    }


class DirectionInference(unittest.TestCase):
    def test_tokens_are_higher_better(self):
        for name in ("throughput_per_ms", "Throughput", "speedup",
                     "scaling_efficiency", "utilization"):
            self.assertTrue(check_bench.is_higher_better(name), name)

    def test_rate_suffixes_are_higher_better(self):
        for name in ("proofs_per_s", "rows_per_ms"):
            self.assertTrue(check_bench.is_higher_better(name), name)

    def test_everything_else_is_lower_better(self):
        for name in ("p99_ms", "latency_ms", "makespan_ms",
                     "peak_bytes", "mean_wait_cycles", "retries"):
            self.assertFalse(check_bench.is_higher_better(name), name)


class CompareRows(unittest.TestCase):
    def test_within_tolerance_passes(self):
        base = {"row": {"throughput_per_s": 100.0, "p99_ms": 10.0}}
        cur = {"row": {"throughput_per_s": 90.0, "p99_ms": 12.0}}
        failures, checked = check_bench.compare_rows(base, cur, 0.25)
        self.assertEqual([], failures)
        self.assertEqual(2, checked)

    def test_higher_better_regression_fails(self):
        base = {"row": {"throughput_per_s": 100.0}}
        cur = {"row": {"throughput_per_s": 50.0}}
        failures, _ = check_bench.compare_rows(base, cur, 0.25)
        self.assertEqual(1, len(failures))
        self.assertIn("higher-is-better", failures[0])

    def test_lower_better_regression_fails(self):
        base = {"row": {"p99_ms": 10.0}}
        cur = {"row": {"p99_ms": 20.0}}
        failures, _ = check_bench.compare_rows(base, cur, 0.25)
        self.assertEqual(1, len(failures))
        self.assertIn("lower-is-better", failures[0])

    def test_improvements_never_fail(self):
        base = {"row": {"throughput_per_s": 100.0, "p99_ms": 10.0}}
        cur = {"row": {"throughput_per_s": 500.0, "p99_ms": 1.0}}
        failures, _ = check_bench.compare_rows(base, cur, 0.25)
        self.assertEqual([], failures)

    def test_missing_row_fails(self):
        base = {"gone": {"p99_ms": 1.0}}
        failures, checked = check_bench.compare_rows(base, {}, 0.25)
        self.assertEqual(1, len(failures))
        self.assertIn("row 'gone' missing", failures[0])
        self.assertEqual(0, checked)

    def test_missing_metric_fails(self):
        base = {"row": {"p99_ms": 1.0, "p50_ms": 1.0}}
        cur = {"row": {"p50_ms": 1.0}}
        failures, _ = check_bench.compare_rows(base, cur, 0.25)
        self.assertEqual(1, len(failures))
        self.assertIn("metric 'p99_ms' missing", failures[0])

    def test_extra_current_rows_and_metrics_ignored(self):
        base = {"row": {"p99_ms": 1.0}}
        cur = {"row": {"p99_ms": 1.0, "new_metric": 9.0},
               "new row": {"p99_ms": 999.0}}
        failures, checked = check_bench.compare_rows(base, cur, 0.25)
        self.assertEqual([], failures)
        self.assertEqual(1, checked)

    def test_zero_baseline_is_skipped(self):
        base = {"row": {"retries": 0.0}}
        cur = {"row": {"retries": 1e9}}
        failures, checked = check_bench.compare_rows(base, cur, 0.25)
        self.assertEqual([], failures)
        self.assertEqual(1, checked)


class OverlapInversion(unittest.TestCase):
    def test_overlapped_row_passes(self):
        cur = {"row": {"comm_ms": 4.0, "comp_ms": 10.0,
                       "overall_ms": 11.0}}
        failures, checked = check_bench.check_overlap(cur)
        self.assertEqual([], failures)
        self.assertEqual(1, checked)

    def test_inverted_row_fails(self):
        # overall beyond max(comm, comp) * 1.25 means transfers are NOT
        # hiding behind compute.
        cur = {"row": {"comm_ms": 4.0, "comp_ms": 10.0,
                       "overall_ms": 14.0}}
        failures, _ = check_bench.check_overlap(cur)
        self.assertEqual(1, len(failures))
        self.assertIn("overlap inversion", failures[0])

    def test_rows_without_the_triple_are_ignored(self):
        cur = {"row": {"comm_ms": 4.0, "overall_ms": 100.0}}
        failures, checked = check_bench.check_overlap(cur)
        self.assertEqual([], failures)
        self.assertEqual(0, checked)


class WriteBaseline(unittest.TestCase):
    def test_round_trip_compares_clean_and_scrubs_sha(self):
        doc = dump(rows={"soak": {"throughput_per_s": 123.0,
                                  "p99_ms": 4.5}},
                   meta={"git_sha": "abc123", "device": "loopback"})
        with tempfile.TemporaryDirectory() as tmp:
            baseline = os.path.join(tmp, "baseline.json")
            check_bench.write_baseline(doc, baseline)
            with open(baseline) as f:
                written = json.load(f)
            self.assertNotIn("git_sha", written["meta"])
            self.assertEqual("loopback", written["meta"]["device"])

            base_rows = {r["label"]: r["metrics"]
                         for r in written["rows"]}
            cur_rows = {r["label"]: r["metrics"] for r in doc["rows"]}
            failures, checked = check_bench.compare_rows(
                base_rows, cur_rows, 0.25)
            self.assertEqual([], failures)
            self.assertEqual(2, checked)

    def test_cli_write_then_compare(self):
        doc = dump(rows={"soak": {"throughput_per_s": 123.0}})
        with tempfile.TemporaryDirectory() as tmp:
            current = os.path.join(tmp, "current.json")
            baseline = os.path.join(tmp, "baseline.json")
            with open(current, "w") as f:
                json.dump(doc, f)
            argv = sys.argv
            try:
                sys.argv = ["check_bench.py", "--baseline", baseline,
                            "--current", current, "--write-baseline"]
                self.assertEqual(0, check_bench.main())
                sys.argv = ["check_bench.py", "--baseline", baseline,
                            "--current", current]
                self.assertEqual(0, check_bench.main())
            finally:
                sys.argv = argv


if __name__ == "__main__":
    unittest.main()
