#!/usr/bin/env python3
"""Compare a bench --json dump against its checked-in baseline.

Usage:
    check_bench.py --baseline bench/baselines/bench_system.json \
                   --current /tmp/bench_system.json \
                   [--tolerance 0.25]

    check_bench.py --baseline bench/baselines/bench_net.json \
                   --current /tmp/bench_net.json --write-baseline

Rules (stdlib only; exit 0 = pass, 1 = regression, 2 = usage error):

  * Every (row, metric) pair present in the BASELINE must exist in the
    current dump. Extra rows/metrics in the current dump are ignored,
    so benches can grow without breaking CI.
  * Metric direction is inferred from its name: names containing
    "throughput", "speedup", "scaling", "utilization", or ending in
    "_per_s"/"_per_ms" are higher-is-better; everything else
    (latencies in _ms/_s, byte counts) is lower-is-better.
  * A metric fails when it is worse than the baseline by more than
    --tolerance (default 25%). Improvements never fail.
  * Overlap inversion: any row carrying comm_ms, comp_ms, AND
    overall_ms in the CURRENT dump must satisfy
    overall_ms <= max(comm_ms, comp_ms) * 1.25 — the pipelined
    system's defining property that transfers hide behind compute.

--write-baseline replaces the comparison: the current dump is written
to the --baseline path (git_sha scrubbed, stable formatting) so
regenerating a baseline after an intentional perf change is one
command instead of hand-edited JSON.
"""

import argparse
import json
import sys

HIGHER_BETTER_TOKENS = ("throughput", "speedup", "scaling",
                        "utilization")
HIGHER_BETTER_SUFFIXES = ("_per_s", "_per_ms")
OVERLAP_SLACK = 1.25


def is_higher_better(metric):
    name = metric.lower()
    if any(tok in name for tok in HIGHER_BETTER_TOKENS):
        return True
    return name.endswith(HIGHER_BETTER_SUFFIXES)


def load_rows(path):
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for row in doc.get("rows", []):
        rows[row["label"]] = row.get("metrics", {})
    return doc, rows


def compare_rows(base_rows, cur_rows, tolerance):
    """Baseline-vs-current comparison. Returns (failures, checked)."""
    failures = []
    checked = 0
    for label, base_metrics in base_rows.items():
        if label not in cur_rows:
            failures.append(f"row '{label}' missing from current dump")
            continue
        cur_metrics = cur_rows[label]
        for metric, base_val in base_metrics.items():
            if metric not in cur_metrics:
                failures.append(
                    f"{label}: metric '{metric}' missing from current "
                    "dump")
                continue
            cur_val = cur_metrics[metric]
            checked += 1
            if base_val == 0:
                continue
            ratio = cur_val / base_val
            if is_higher_better(metric):
                if ratio < 1.0 - tolerance:
                    failures.append(
                        f"{label}.{metric}: {cur_val:.6g} vs baseline "
                        f"{base_val:.6g} ({(1 - ratio) * 100:.1f}% "
                        "worse, higher-is-better)")
            else:
                if ratio > 1.0 + tolerance:
                    failures.append(
                        f"{label}.{metric}: {cur_val:.6g} vs baseline "
                        f"{base_val:.6g} ({(ratio - 1) * 100:.1f}% "
                        "worse, lower-is-better)")
    return failures, checked


def check_overlap(cur_rows):
    """Overlap-inversion rule over the CURRENT dump.

    Overall cycle time must track the slower of communication and
    compute, not their sum. Returns (failures, checked).
    """
    failures = []
    checked = 0
    for label, metrics in cur_rows.items():
        keys = ("comm_ms", "comp_ms", "overall_ms")
        if all(k in metrics for k in keys):
            comm, comp, overall = (metrics[k] for k in keys)
            bound = max(comm, comp) * OVERLAP_SLACK
            checked += 1
            if overall > bound:
                failures.append(
                    f"{label}: overlap inversion — overall_ms "
                    f"{overall:.6g} > max(comm {comm:.6g}, comp "
                    f"{comp:.6g}) * {OVERLAP_SLACK}")
    return failures, checked


def write_baseline(current_doc, baseline_path):
    """Write @p current_doc as a checked-in baseline.

    The git sha is scrubbed (a baseline is not tied to the commit that
    happened to regenerate it) and the formatting is stable so baseline
    diffs review cleanly.
    """
    doc = dict(current_doc)
    meta = dict(doc.get("meta", {}))
    meta.pop("git_sha", None)
    doc["meta"] = meta
    with open(baseline_path, "w") as f:
        json.dump(doc, f, indent=1, sort_keys=False)
        f.write("\n")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed fractional regression (default 0.25)")
    ap.add_argument("--write-baseline", action="store_true",
                    help="write the current dump to --baseline instead "
                         "of comparing")
    args = ap.parse_args()

    try:
        cur_doc, cur_rows = load_rows(args.current)
    except (OSError, json.JSONDecodeError, KeyError) as e:
        print(f"check_bench: cannot load inputs: {e}", file=sys.stderr)
        return 2

    if args.write_baseline:
        try:
            write_baseline(cur_doc, args.baseline)
        except OSError as e:
            print(f"check_bench: cannot write baseline: {e}",
                  file=sys.stderr)
            return 2
        print(f"check_bench[{cur_doc.get('bench', '?')}]: wrote "
              f"{args.baseline} ({len(cur_rows)} rows)")
        return 0

    try:
        base_doc, base_rows = load_rows(args.baseline)
    except (OSError, json.JSONDecodeError, KeyError) as e:
        print(f"check_bench: cannot load inputs: {e}", file=sys.stderr)
        return 2

    bench = base_doc.get("bench", "?")
    failures, checked = compare_rows(base_rows, cur_rows,
                                     args.tolerance)
    overlap_failures, overlap_checked = check_overlap(cur_rows)
    failures += overlap_failures
    checked += overlap_checked

    if failures:
        print(f"check_bench[{bench}]: FAIL ({len(failures)} problem(s), "
              f"{checked} checks)")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"check_bench[{bench}]: OK ({checked} checks, tolerance "
          f"{args.tolerance * 100:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
