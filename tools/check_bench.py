#!/usr/bin/env python3
"""Compare a bench --json dump against its checked-in baseline.

Usage:
    check_bench.py --baseline bench/baselines/bench_system.json \
                   --current /tmp/bench_system.json \
                   [--tolerance 0.25]

Rules (stdlib only; exit 0 = pass, 1 = regression, 2 = usage error):

  * Every (row, metric) pair present in the BASELINE must exist in the
    current dump. Extra rows/metrics in the current dump are ignored,
    so benches can grow without breaking CI.
  * Metric direction is inferred from its name: names containing
    "throughput", "speedup", "scaling", "utilization", or ending in
    "_per_s"/"_per_ms" are higher-is-better; everything else
    (latencies in _ms/_s, byte counts) is lower-is-better.
  * A metric fails when it is worse than the baseline by more than
    --tolerance (default 25%). Improvements never fail.
  * Overlap inversion: any row carrying comm_ms, comp_ms, AND
    overall_ms in the CURRENT dump must satisfy
    overall_ms <= max(comm_ms, comp_ms) * 1.25 — the pipelined
    system's defining property that transfers hide behind compute.
"""

import argparse
import json
import sys

HIGHER_BETTER_TOKENS = ("throughput", "speedup", "scaling",
                        "utilization")
HIGHER_BETTER_SUFFIXES = ("_per_s", "_per_ms")
OVERLAP_SLACK = 1.25


def is_higher_better(metric):
    name = metric.lower()
    if any(tok in name for tok in HIGHER_BETTER_TOKENS):
        return True
    return name.endswith(HIGHER_BETTER_SUFFIXES)


def load_rows(path):
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for row in doc.get("rows", []):
        rows[row["label"]] = row.get("metrics", {})
    return doc, rows


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed fractional regression (default 0.25)")
    args = ap.parse_args()

    try:
        base_doc, base_rows = load_rows(args.baseline)
        cur_doc, cur_rows = load_rows(args.current)
    except (OSError, json.JSONDecodeError, KeyError) as e:
        print(f"check_bench: cannot load inputs: {e}", file=sys.stderr)
        return 2

    bench = base_doc.get("bench", "?")
    failures = []
    checked = 0

    for label, base_metrics in base_rows.items():
        if label not in cur_rows:
            failures.append(f"row '{label}' missing from current dump")
            continue
        cur_metrics = cur_rows[label]
        for metric, base_val in base_metrics.items():
            if metric not in cur_metrics:
                failures.append(
                    f"{label}: metric '{metric}' missing from current "
                    "dump")
                continue
            cur_val = cur_metrics[metric]
            checked += 1
            if base_val == 0:
                continue
            if is_higher_better(metric):
                ratio = cur_val / base_val
                if ratio < 1.0 - args.tolerance:
                    failures.append(
                        f"{label}.{metric}: {cur_val:.6g} vs baseline "
                        f"{base_val:.6g} ({(1 - ratio) * 100:.1f}% "
                        "worse, higher-is-better)")
            else:
                ratio = cur_val / base_val
                if ratio > 1.0 + args.tolerance:
                    failures.append(
                        f"{label}.{metric}: {cur_val:.6g} vs baseline "
                        f"{base_val:.6g} ({(ratio - 1) * 100:.1f}% "
                        "worse, lower-is-better)")

    # Overlap inversion: overall cycle time must track the slower of
    # communication and compute, not their sum.
    for label, metrics in cur_rows.items():
        keys = ("comm_ms", "comp_ms", "overall_ms")
        if all(k in metrics for k in keys):
            comm, comp, overall = (metrics[k] for k in keys)
            bound = max(comm, comp) * OVERLAP_SLACK
            checked += 1
            if overall > bound:
                failures.append(
                    f"{label}: overlap inversion — overall_ms "
                    f"{overall:.6g} > max(comm {comm:.6g}, comp "
                    f"{comp:.6g}) * {OVERLAP_SLACK}")

    if failures:
        print(f"check_bench[{bench}]: FAIL ({len(failures)} problem(s), "
              f"{checked} checks)")
        for f in failures:
            print(f"  - {f}")
        return 1
    print(f"check_bench[{bench}]: OK ({checked} checks, tolerance "
          f"{args.tolerance * 100:.0f}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
