# Empty compiler generated dependencies file for batchzk.
# This may be replaced when dependencies are built.
