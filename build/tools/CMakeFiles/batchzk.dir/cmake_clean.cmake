file(REMOVE_RECURSE
  "CMakeFiles/batchzk.dir/batchzk.cpp.o"
  "CMakeFiles/batchzk.dir/batchzk.cpp.o.d"
  "batchzk"
  "batchzk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batchzk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
