file(REMOVE_RECURSE
  "CMakeFiles/gkr_inference.dir/gkr_inference.cpp.o"
  "CMakeFiles/gkr_inference.dir/gkr_inference.cpp.o.d"
  "gkr_inference"
  "gkr_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gkr_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
