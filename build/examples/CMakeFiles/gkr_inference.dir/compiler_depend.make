# Empty compiler generated dependencies file for gkr_inference.
# This may be replaced when dependencies are built.
