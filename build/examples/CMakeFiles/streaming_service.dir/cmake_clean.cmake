file(REMOVE_RECURSE
  "CMakeFiles/streaming_service.dir/streaming_service.cpp.o"
  "CMakeFiles/streaming_service.dir/streaming_service.cpp.o.d"
  "streaming_service"
  "streaming_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
