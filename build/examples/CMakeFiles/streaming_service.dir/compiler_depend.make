# Empty compiler generated dependencies file for streaming_service.
# This may be replaced when dependencies are built.
