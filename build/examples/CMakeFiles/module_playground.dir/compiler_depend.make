# Empty compiler generated dependencies file for module_playground.
# This may be replaced when dependencies are built.
