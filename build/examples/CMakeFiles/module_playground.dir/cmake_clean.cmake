file(REMOVE_RECURSE
  "CMakeFiles/module_playground.dir/module_playground.cpp.o"
  "CMakeFiles/module_playground.dir/module_playground.cpp.o.d"
  "module_playground"
  "module_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/module_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
