file(REMOVE_RECURSE
  "CMakeFiles/batch_throughput.dir/batch_throughput.cpp.o"
  "CMakeFiles/batch_throughput.dir/batch_throughput.cpp.o.d"
  "batch_throughput"
  "batch_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
