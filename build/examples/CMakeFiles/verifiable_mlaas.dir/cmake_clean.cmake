file(REMOVE_RECURSE
  "CMakeFiles/verifiable_mlaas.dir/verifiable_mlaas.cpp.o"
  "CMakeFiles/verifiable_mlaas.dir/verifiable_mlaas.cpp.o.d"
  "verifiable_mlaas"
  "verifiable_mlaas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verifiable_mlaas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
