# Empty compiler generated dependencies file for verifiable_mlaas.
# This may be replaced when dependencies are built.
