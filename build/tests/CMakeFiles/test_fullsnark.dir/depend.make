# Empty dependencies file for test_fullsnark.
# This may be replaced when dependencies are built.
