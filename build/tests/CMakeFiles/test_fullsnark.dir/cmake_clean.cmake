file(REMOVE_RECURSE
  "CMakeFiles/test_fullsnark.dir/test_fullsnark.cpp.o"
  "CMakeFiles/test_fullsnark.dir/test_fullsnark.cpp.o.d"
  "test_fullsnark"
  "test_fullsnark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fullsnark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
