file(REMOVE_RECURSE
  "CMakeFiles/test_gkr.dir/test_gkr.cpp.o"
  "CMakeFiles/test_gkr.dir/test_gkr.cpp.o.d"
  "test_gkr"
  "test_gkr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gkr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
