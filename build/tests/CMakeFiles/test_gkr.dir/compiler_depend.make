# Empty compiler generated dependencies file for test_gkr.
# This may be replaced when dependencies are built.
