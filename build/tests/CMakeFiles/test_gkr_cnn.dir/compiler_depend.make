# Empty compiler generated dependencies file for test_gkr_cnn.
# This may be replaced when dependencies are built.
