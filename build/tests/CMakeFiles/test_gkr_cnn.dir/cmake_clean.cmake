file(REMOVE_RECURSE
  "CMakeFiles/test_gkr_cnn.dir/test_gkr_cnn.cpp.o"
  "CMakeFiles/test_gkr_cnn.dir/test_gkr_cnn.cpp.o.d"
  "test_gkr_cnn"
  "test_gkr_cnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gkr_cnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
