# Empty dependencies file for test_ff_kat.
# This may be replaced when dependencies are built.
