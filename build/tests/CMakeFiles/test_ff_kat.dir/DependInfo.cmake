
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_ff_kat.cpp" "tests/CMakeFiles/test_ff_kat.dir/test_ff_kat.cpp.o" "gcc" "tests/CMakeFiles/test_ff_kat.dir/test_ff_kat.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bzk_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ff/CMakeFiles/bzk_ff.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/bzk_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/bzk_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/merkle/CMakeFiles/bzk_merkle.dir/DependInfo.cmake"
  "/root/repo/build/src/sumcheck/CMakeFiles/bzk_sumcheck.dir/DependInfo.cmake"
  "/root/repo/build/src/encoder/CMakeFiles/bzk_encoder.dir/DependInfo.cmake"
  "/root/repo/build/src/curve/CMakeFiles/bzk_curve.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/bzk_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bzk_core.dir/DependInfo.cmake"
  "/root/repo/build/src/zkml/CMakeFiles/bzk_zkml.dir/DependInfo.cmake"
  "/root/repo/build/src/gkr/CMakeFiles/bzk_gkr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
