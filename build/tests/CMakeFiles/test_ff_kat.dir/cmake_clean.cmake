file(REMOVE_RECURSE
  "CMakeFiles/test_ff_kat.dir/test_ff_kat.cpp.o"
  "CMakeFiles/test_ff_kat.dir/test_ff_kat.cpp.o.d"
  "test_ff_kat"
  "test_ff_kat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ff_kat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
