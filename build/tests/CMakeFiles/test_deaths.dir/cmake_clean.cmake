file(REMOVE_RECURSE
  "CMakeFiles/test_deaths.dir/test_deaths.cpp.o"
  "CMakeFiles/test_deaths.dir/test_deaths.cpp.o.d"
  "test_deaths"
  "test_deaths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deaths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
