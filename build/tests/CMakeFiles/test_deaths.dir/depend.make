# Empty dependencies file for test_deaths.
# This may be replaced when dependencies are built.
