file(REMOVE_RECURSE
  "CMakeFiles/test_zkml.dir/test_zkml.cpp.o"
  "CMakeFiles/test_zkml.dir/test_zkml.cpp.o.d"
  "test_zkml"
  "test_zkml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zkml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
