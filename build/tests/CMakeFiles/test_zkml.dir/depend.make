# Empty dependencies file for test_zkml.
# This may be replaced when dependencies are built.
