file(REMOVE_RECURSE
  "CMakeFiles/bzk_zkml.dir/Cnn.cpp.o"
  "CMakeFiles/bzk_zkml.dir/Cnn.cpp.o.d"
  "CMakeFiles/bzk_zkml.dir/MlService.cpp.o"
  "CMakeFiles/bzk_zkml.dir/MlService.cpp.o.d"
  "CMakeFiles/bzk_zkml.dir/Vgg16.cpp.o"
  "CMakeFiles/bzk_zkml.dir/Vgg16.cpp.o.d"
  "libbzk_zkml.a"
  "libbzk_zkml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bzk_zkml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
