# Empty compiler generated dependencies file for bzk_zkml.
# This may be replaced when dependencies are built.
