file(REMOVE_RECURSE
  "libbzk_zkml.a"
)
