file(REMOVE_RECURSE
  "CMakeFiles/bzk_util.dir/Hex.cpp.o"
  "CMakeFiles/bzk_util.dir/Hex.cpp.o.d"
  "CMakeFiles/bzk_util.dir/Log.cpp.o"
  "CMakeFiles/bzk_util.dir/Log.cpp.o.d"
  "CMakeFiles/bzk_util.dir/Stats.cpp.o"
  "CMakeFiles/bzk_util.dir/Stats.cpp.o.d"
  "CMakeFiles/bzk_util.dir/ThreadPool.cpp.o"
  "CMakeFiles/bzk_util.dir/ThreadPool.cpp.o.d"
  "libbzk_util.a"
  "libbzk_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bzk_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
