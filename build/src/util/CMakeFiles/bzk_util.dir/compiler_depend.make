# Empty compiler generated dependencies file for bzk_util.
# This may be replaced when dependencies are built.
