file(REMOVE_RECURSE
  "libbzk_util.a"
)
