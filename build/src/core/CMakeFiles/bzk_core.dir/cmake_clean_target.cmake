file(REMOVE_RECURSE
  "libbzk_core.a"
)
