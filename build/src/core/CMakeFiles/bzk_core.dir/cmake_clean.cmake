file(REMOVE_RECURSE
  "CMakeFiles/bzk_core.dir/PipelinedSystem.cpp.o"
  "CMakeFiles/bzk_core.dir/PipelinedSystem.cpp.o.d"
  "CMakeFiles/bzk_core.dir/StreamingService.cpp.o"
  "CMakeFiles/bzk_core.dir/StreamingService.cpp.o.d"
  "libbzk_core.a"
  "libbzk_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bzk_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
