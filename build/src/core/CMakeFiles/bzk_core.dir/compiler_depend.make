# Empty compiler generated dependencies file for bzk_core.
# This may be replaced when dependencies are built.
