file(REMOVE_RECURSE
  "libbzk_encoder.a"
)
