file(REMOVE_RECURSE
  "CMakeFiles/bzk_encoder.dir/GpuEncoder.cpp.o"
  "CMakeFiles/bzk_encoder.dir/GpuEncoder.cpp.o.d"
  "CMakeFiles/bzk_encoder.dir/Topology.cpp.o"
  "CMakeFiles/bzk_encoder.dir/Topology.cpp.o.d"
  "libbzk_encoder.a"
  "libbzk_encoder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bzk_encoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
