# Empty dependencies file for bzk_encoder.
# This may be replaced when dependencies are built.
