file(REMOVE_RECURSE
  "libbzk_baseline.a"
)
