file(REMOVE_RECURSE
  "CMakeFiles/bzk_baseline.dir/OldProtocol.cpp.o"
  "CMakeFiles/bzk_baseline.dir/OldProtocol.cpp.o.d"
  "libbzk_baseline.a"
  "libbzk_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bzk_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
