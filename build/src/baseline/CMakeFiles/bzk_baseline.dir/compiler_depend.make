# Empty compiler generated dependencies file for bzk_baseline.
# This may be replaced when dependencies are built.
