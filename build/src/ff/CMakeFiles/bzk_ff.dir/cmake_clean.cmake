file(REMOVE_RECURSE
  "CMakeFiles/bzk_ff.dir/U256.cpp.o"
  "CMakeFiles/bzk_ff.dir/U256.cpp.o.d"
  "libbzk_ff.a"
  "libbzk_ff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bzk_ff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
