# Empty compiler generated dependencies file for bzk_ff.
# This may be replaced when dependencies are built.
