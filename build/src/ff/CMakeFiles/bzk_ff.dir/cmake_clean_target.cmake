file(REMOVE_RECURSE
  "libbzk_ff.a"
)
