# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("ff")
subdirs("hash")
subdirs("gpusim")
subdirs("poly")
subdirs("gkr")
subdirs("merkle")
subdirs("sumcheck")
subdirs("encoder")
subdirs("curve")
subdirs("circuit")
subdirs("baseline")
subdirs("core")
subdirs("zkml")
