file(REMOVE_RECURSE
  "CMakeFiles/bzk_gkr.dir/GpuGkr.cpp.o"
  "CMakeFiles/bzk_gkr.dir/GpuGkr.cpp.o.d"
  "libbzk_gkr.a"
  "libbzk_gkr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bzk_gkr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
