file(REMOVE_RECURSE
  "libbzk_gkr.a"
)
