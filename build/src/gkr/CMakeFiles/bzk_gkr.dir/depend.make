# Empty dependencies file for bzk_gkr.
# This may be replaced when dependencies are built.
