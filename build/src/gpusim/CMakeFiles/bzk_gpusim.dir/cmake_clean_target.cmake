file(REMOVE_RECURSE
  "libbzk_gpusim.a"
)
