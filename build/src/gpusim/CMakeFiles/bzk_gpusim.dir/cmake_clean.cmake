file(REMOVE_RECURSE
  "CMakeFiles/bzk_gpusim.dir/Device.cpp.o"
  "CMakeFiles/bzk_gpusim.dir/Device.cpp.o.d"
  "CMakeFiles/bzk_gpusim.dir/DeviceSpec.cpp.o"
  "CMakeFiles/bzk_gpusim.dir/DeviceSpec.cpp.o.d"
  "libbzk_gpusim.a"
  "libbzk_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bzk_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
