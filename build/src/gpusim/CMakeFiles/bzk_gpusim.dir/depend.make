# Empty dependencies file for bzk_gpusim.
# This may be replaced when dependencies are built.
