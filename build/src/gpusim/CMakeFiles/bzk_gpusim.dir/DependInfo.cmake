
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpusim/Device.cpp" "src/gpusim/CMakeFiles/bzk_gpusim.dir/Device.cpp.o" "gcc" "src/gpusim/CMakeFiles/bzk_gpusim.dir/Device.cpp.o.d"
  "/root/repo/src/gpusim/DeviceSpec.cpp" "src/gpusim/CMakeFiles/bzk_gpusim.dir/DeviceSpec.cpp.o" "gcc" "src/gpusim/CMakeFiles/bzk_gpusim.dir/DeviceSpec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/bzk_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
