file(REMOVE_RECURSE
  "CMakeFiles/bzk_merkle.dir/GpuMerkle.cpp.o"
  "CMakeFiles/bzk_merkle.dir/GpuMerkle.cpp.o.d"
  "CMakeFiles/bzk_merkle.dir/MerkleTree.cpp.o"
  "CMakeFiles/bzk_merkle.dir/MerkleTree.cpp.o.d"
  "libbzk_merkle.a"
  "libbzk_merkle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bzk_merkle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
