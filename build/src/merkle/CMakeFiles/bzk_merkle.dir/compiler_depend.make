# Empty compiler generated dependencies file for bzk_merkle.
# This may be replaced when dependencies are built.
