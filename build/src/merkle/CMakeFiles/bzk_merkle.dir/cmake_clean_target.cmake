file(REMOVE_RECURSE
  "libbzk_merkle.a"
)
