file(REMOVE_RECURSE
  "libbzk_curve.a"
)
