file(REMOVE_RECURSE
  "CMakeFiles/bzk_curve.dir/Bn254.cpp.o"
  "CMakeFiles/bzk_curve.dir/Bn254.cpp.o.d"
  "CMakeFiles/bzk_curve.dir/Msm.cpp.o"
  "CMakeFiles/bzk_curve.dir/Msm.cpp.o.d"
  "libbzk_curve.a"
  "libbzk_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bzk_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
