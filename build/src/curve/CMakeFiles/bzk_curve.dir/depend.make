# Empty dependencies file for bzk_curve.
# This may be replaced when dependencies are built.
