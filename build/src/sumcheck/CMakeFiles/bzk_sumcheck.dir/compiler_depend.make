# Empty compiler generated dependencies file for bzk_sumcheck.
# This may be replaced when dependencies are built.
