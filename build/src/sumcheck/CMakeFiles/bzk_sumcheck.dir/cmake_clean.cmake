file(REMOVE_RECURSE
  "CMakeFiles/bzk_sumcheck.dir/GpuSumcheck.cpp.o"
  "CMakeFiles/bzk_sumcheck.dir/GpuSumcheck.cpp.o.d"
  "libbzk_sumcheck.a"
  "libbzk_sumcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bzk_sumcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
