file(REMOVE_RECURSE
  "libbzk_sumcheck.a"
)
