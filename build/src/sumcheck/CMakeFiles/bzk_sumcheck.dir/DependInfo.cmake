
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sumcheck/GpuSumcheck.cpp" "src/sumcheck/CMakeFiles/bzk_sumcheck.dir/GpuSumcheck.cpp.o" "gcc" "src/sumcheck/CMakeFiles/bzk_sumcheck.dir/GpuSumcheck.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ff/CMakeFiles/bzk_ff.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/bzk_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/bzk_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bzk_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
