file(REMOVE_RECURSE
  "CMakeFiles/bzk_hash.dir/Sha256.cpp.o"
  "CMakeFiles/bzk_hash.dir/Sha256.cpp.o.d"
  "CMakeFiles/bzk_hash.dir/Transcript.cpp.o"
  "CMakeFiles/bzk_hash.dir/Transcript.cpp.o.d"
  "libbzk_hash.a"
  "libbzk_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bzk_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
