# Empty compiler generated dependencies file for bzk_hash.
# This may be replaced when dependencies are built.
