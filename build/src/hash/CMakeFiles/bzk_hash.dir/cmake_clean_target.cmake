file(REMOVE_RECURSE
  "libbzk_hash.a"
)
