file(REMOVE_RECURSE
  "../bench/bench_zkml"
  "../bench/bench_zkml.pdb"
  "CMakeFiles/bench_zkml.dir/bench_zkml.cpp.o"
  "CMakeFiles/bench_zkml.dir/bench_zkml.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_zkml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
