# Empty dependencies file for bench_zkml.
# This may be replaced when dependencies are built.
