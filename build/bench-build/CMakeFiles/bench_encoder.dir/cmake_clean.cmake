file(REMOVE_RECURSE
  "../bench/bench_encoder"
  "../bench/bench_encoder.pdb"
  "CMakeFiles/bench_encoder.dir/bench_encoder.cpp.o"
  "CMakeFiles/bench_encoder.dir/bench_encoder.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_encoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
