# Empty dependencies file for bench_encoder.
# This may be replaced when dependencies are built.
