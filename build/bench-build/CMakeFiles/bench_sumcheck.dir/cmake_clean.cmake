file(REMOVE_RECURSE
  "../bench/bench_sumcheck"
  "../bench/bench_sumcheck.pdb"
  "CMakeFiles/bench_sumcheck.dir/bench_sumcheck.cpp.o"
  "CMakeFiles/bench_sumcheck.dir/bench_sumcheck.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sumcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
