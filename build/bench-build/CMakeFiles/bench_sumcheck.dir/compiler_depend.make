# Empty compiler generated dependencies file for bench_sumcheck.
# This may be replaced when dependencies are built.
