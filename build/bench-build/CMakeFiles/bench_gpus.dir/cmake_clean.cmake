file(REMOVE_RECURSE
  "../bench/bench_gpus"
  "../bench/bench_gpus.pdb"
  "CMakeFiles/bench_gpus.dir/bench_gpus.cpp.o"
  "CMakeFiles/bench_gpus.dir/bench_gpus.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
