# Empty dependencies file for bench_gkr.
# This may be replaced when dependencies are built.
