file(REMOVE_RECURSE
  "../bench/bench_gkr"
  "../bench/bench_gkr.pdb"
  "CMakeFiles/bench_gkr.dir/bench_gkr.cpp.o"
  "CMakeFiles/bench_gkr.dir/bench_gkr.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gkr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
