file(REMOVE_RECURSE
  "../bench/bench_merkle"
  "../bench/bench_merkle.pdb"
  "CMakeFiles/bench_merkle.dir/bench_merkle.cpp.o"
  "CMakeFiles/bench_merkle.dir/bench_merkle.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_merkle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
